module Micro = Micro

type kind = Cycles | Counter

type metric = { name : string; kind : kind; value : int }

let default_tolerance_pct = 2.0

(* Metric names are stable slugs: lowercase, alnum preserved, everything
   else collapsed to single dashes ("read 4 KiB" -> "read-4-kib"). *)
let slug s =
  let buf = Buffer.create (String.length s) in
  let dash = ref false in
  String.iter
    (fun c ->
      match Char.lowercase_ascii c with
      | ('a' .. 'z' | '0' .. '9') as c ->
          if !dash && Buffer.length buf > 0 then Buffer.add_char buf '-';
          dash := false;
          Buffer.add_char buf c
      | _ -> dash := true)
    s;
  Buffer.contents buf

(* The counters whose exact values the sentinel pins: the quantities the
   paper's overhead decomposition attributes cost to. *)
let pinned_counters =
  [
    "world_switches";
    "hypercalls";
    "syscalls";
    "shadow_walks";
    "hidden_faults";
    "guest_faults";
    "page_encryptions";
    "page_decryptions";
    "clean_reencryptions";
    "hash_checks";
    "disk_reads";
    "disk_writes";
    "bytes_copied";
  ]

let vconfig_of cost_model =
  match cost_model with
  | None -> None
  | Some m -> Some { Cloak.Vmm.default_config with cost_model = m }

let run_cycles ?vconfig ~cloaked prog =
  let r = Harness.run_program ?vconfig ~cloaked prog in
  if not (Harness.all_exited_zero r) then
    failwith "regress: a suite workload exited non-zero";
  r

let suite ?cost_model () =
  let vconfig = vconfig_of cost_model in
  let e1 =
    List.concat_map
      (fun (k : Workloads.Spec.kernel) ->
        let run ~cloaked =
          (run_cycles ?vconfig ~cloaked (fun env ->
               let u = Uapi.of_env env in
               ignore (k.Workloads.Spec.run u ~scale:Workloads.Spec.default_scale)))
            .Harness.cycles
        in
        [
          { name = Printf.sprintf "e1/%s/native_cycles" (slug k.Workloads.Spec.name);
            kind = Cycles; value = run ~cloaked:false };
          { name = Printf.sprintf "e1/%s/cloaked_cycles" (slug k.Workloads.Spec.name);
            kind = Cycles; value = run ~cloaked:true };
        ])
      Workloads.Spec.kernels
  in
  let e2 =
    List.concat_map
      (fun (m : Micro.micro) ->
        [
          { name = Printf.sprintf "e2/%s/native_cpo" (slug m.Micro.name);
            kind = Cycles; value = Micro.measure ?vconfig ~cloaked:false m };
          { name = Printf.sprintf "e2/%s/cloaked_cpo" (slug m.Micro.name);
            kind = Cycles; value = Micro.measure ?vconfig ~cloaked:true m };
        ])
      Micro.all
  in
  let cfg = Workloads.Fileio.default in
  let fileio ~cloaked = run_cycles ?vconfig ~cloaked (Workloads.Fileio.run cfg ~use_shim:true) in
  let native = fileio ~cloaked:false in
  let cloaked = fileio ~cloaked:true in
  let counters =
    List.filter_map
      (fun (name, value) ->
        if List.mem name pinned_counters then
          Some { name = "fileio/cloaked/" ^ name; kind = Counter; value }
        else None)
      (Machine.Counters.to_assoc cloaked.Harness.counters)
  in
  (* one deterministic live-migration seed pins the protocol's event
     counts (attempt/abort/retry/MAC-reject behaviour must not drift
     silently) and tracks its downtime like any other latency *)
  let migrate =
    let r = Harness.Migrate.run_seed ~seed:7 in
    if r.Harness.Migrate.failures <> [] then
      failwith
        ("regress: migration invariants broken: "
        ^ String.concat "; " r.Harness.Migrate.failures);
    [
      { name = "migrate/attempts"; kind = Counter; value = r.Harness.Migrate.attempts };
      { name = "migrate/completed"; kind = Counter; value = r.Harness.Migrate.completed };
      { name = "migrate/aborts"; kind = Counter; value = r.Harness.Migrate.aborts };
      { name = "migrate/retries"; kind = Counter; value = r.Harness.Migrate.retries };
      { name = "migrate/chunk-mac-failures"; kind = Counter;
        value = r.Harness.Migrate.mac_failures };
      { name = "migrate/downtime-cycles"; kind = Cycles;
        value = r.Harness.Migrate.downtime_cycles };
    ]
  in
  (* one deterministic fleet seed pins the supervisor's event counts
     (death/drain/failover/shed/heartbeat-timeout behaviour must not
     drift silently) *)
  let fleet =
    let r = Harness.Fleet.run_seed ~seed:7 in
    if r.Harness.Fleet.failures <> [] then
      failwith
        ("regress: fleet invariants broken: "
        ^ String.concat "; " r.Harness.Fleet.failures);
    [
      { name = "fleet/deaths"; kind = Counter; value = r.Harness.Fleet.deaths };
      { name = "fleet/drains"; kind = Counter; value = r.Harness.Fleet.drains };
      { name = "fleet/failovers"; kind = Counter; value = r.Harness.Fleet.failovers };
      { name = "fleet/lost-processes"; kind = Counter;
        value = r.Harness.Fleet.lost_procs };
      { name = "fleet/heartbeat-timeouts"; kind = Counter;
        value = r.Harness.Fleet.hb_timeouts };
      { name = "fleet/sheds"; kind = Counter; value = r.Harness.Fleet.sheds };
      (* telemetry: the fleet's own observability plane is part of the
         pinned behaviour — sample/span volume, stitched cross-host
         traces and burn-rate pages must not drift silently either *)
      { name = "fleet/telemetry-samples"; kind = Counter;
        value = r.Harness.Fleet.tel_samples };
      { name = "fleet/telemetry-spans"; kind = Counter;
        value = r.Harness.Fleet.tel_spans };
      { name = "fleet/stitched-traces"; kind = Counter;
        value = r.Harness.Fleet.stitched_traces };
      { name = "fleet/burn-alerts-fast"; kind = Counter;
        value = r.Harness.Fleet.burn_fast_alerts };
      { name = "fleet/burn-alerts-slow"; kind = Counter;
        value = r.Harness.Fleet.burn_slow_alerts };
    ]
  in
  (* one deterministic adversary seed pins the malicious-kernel campaign
     and the defense's response to it (attack mix, lies detected, typed
     refusals) — a drift here means the adversary or the paraverification
     layer changed behaviour *)
  let adversary =
    let r = Harness.Adversary.run_seed ~seed:7 in
    if r.Harness.Adversary.failures <> [] then
      failwith
        ("regress: adversary invariants broken: "
        ^ String.concat "; " r.Harness.Adversary.failures);
    [
      { name = "adversary/attacks"; kind = Counter; value = r.Harness.Adversary.attacks };
      { name = "adversary/lies-detected"; kind = Counter;
        value = r.Harness.Adversary.lies_detected };
      { name = "adversary/refusals"; kind = Counter;
        value = r.Harness.Adversary.refusals };
      { name = "adversary/survived"; kind = Counter; value = r.Harness.Adversary.survived };
      { name = "adversary/refused"; kind = Counter; value = r.Harness.Adversary.refused };
      { name = "adversary/degraded"; kind = Counter; value = r.Harness.Adversary.degraded };
      { name = "adversary/killed"; kind = Counter; value = r.Harness.Adversary.killed };
    ]
  in
  e1 @ e2
  @ [
      { name = "fileio/native/cycles"; kind = Cycles; value = native.Harness.cycles };
      { name = "fileio/cloaked/cycles"; kind = Cycles; value = cloaked.Harness.cycles };
    ]
  @ counters @ migrate @ fleet @ adversary

(* --- comparison --- *)

type drift = {
  name : string;
  kind : kind;
  baseline : int;
  current : int;
  drift_pct : float;
  ok : bool;
}

type outcome = {
  drifts : drift list;
  missing : string list;
  extra : string list;
  tolerance_pct : float;
}

let compare_metrics ~tolerance_pct ~baseline metrics =
  let measured = List.map (fun (m : metric) -> (m.name, m)) metrics in
  let missing =
    List.filter_map
      (fun (name, _) -> if List.mem_assoc name measured then None else Some name)
      baseline
  in
  let extra, drifts =
    List.fold_left
      (fun (extra, drifts) (m : metric) ->
        match List.assoc_opt m.name baseline with
        | None -> (m.name :: extra, drifts)
        | Some base ->
            let drift_pct =
              if base = 0 then if m.value = 0 then 0.0 else infinity
              else 100.0 *. float_of_int (m.value - base) /. float_of_int base
            in
            let ok =
              match m.kind with
              | Counter -> m.value = base
              | Cycles -> Float.abs drift_pct <= tolerance_pct
            in
            (extra,
             { name = m.name; kind = m.kind; baseline = base; current = m.value;
               drift_pct; ok }
             :: drifts))
      ([], []) metrics
  in
  { drifts = List.rev drifts; missing; extra = List.rev extra; tolerance_pct }

let ok o =
  o.missing = [] && o.extra = [] && List.for_all (fun d -> d.ok) o.drifts

let failures o =
  List.filter_map
    (fun d ->
      if d.ok then None
      else
        Some
          (match d.kind with
          | Counter ->
              Printf.sprintf "%s: counter changed %d -> %d (exact match required)"
                d.name d.baseline d.current
          | Cycles ->
              Printf.sprintf "%s: %d -> %d cycles (%+.2f%%, tolerance ±%.1f%%)"
                d.name d.baseline d.current d.drift_pct o.tolerance_pct))
    o.drifts
  @ List.map
      (fun n -> Printf.sprintf "%s: in baselines but not measured (suite changed?)" n)
      o.missing
  @ List.map
      (fun n -> Printf.sprintf "%s: measured but missing from baselines (run --update-baselines)" n)
      o.extra

let pp_outcome ppf o =
  Format.fprintf ppf "@[<v>%-38s %14s %14s %9s %6s@," "metric" "baseline"
    "current" "drift" "";
  Format.fprintf ppf "%s@," (String.make 86 '-');
  List.iter
    (fun d ->
      Format.fprintf ppf "%-38s %14d %14d %+8.2f%% %6s@," d.name d.baseline
        d.current d.drift_pct
        (if d.ok then "" else if d.kind = Counter then "EXACT!" else "DRIFT!"))
    o.drifts;
  List.iter (fun n -> Format.fprintf ppf "%-38s (missing from this run)@," n) o.missing;
  List.iter (fun n -> Format.fprintf ppf "%-38s (not in baselines)@," n) o.extra;
  let bad = List.length (failures o) in
  if bad = 0 then
    Format.fprintf ppf "all %d metrics within tolerance (±%.1f%% cycles, exact counters)@,"
      (List.length o.drifts) o.tolerance_pct
  else Format.fprintf ppf "%d metric(s) out of tolerance@," bad;
  Format.fprintf ppf "@]"

(* --- baselines file --- *)

let benchmark_name = "regress-baselines"

let to_report ~tolerance_pct metrics =
  Report.bench ~name:benchmark_name
    [
      ("tolerance_pct", Report.Float tolerance_pct);
      ( "metrics",
        Report.Obj (List.map (fun (m : metric) -> (m.name, Report.Int m.value)) metrics) );
    ]

let write_baselines ~path ~tolerance_pct metrics =
  Report.write ~path (to_report ~tolerance_pct metrics)

let load_baselines ~path =
  let doc =
    try Report.load ~path
    with
    | Sys_error msg -> failwith ("regress baselines: " ^ msg)
    | Report.Parse_error msg -> failwith ("regress baselines: " ^ msg)
  in
  (match Option.bind (Report.member "schema_version" doc) Report.to_int with
  | Some v when v = Report.schema_version -> ()
  | Some v ->
      failwith
        (Printf.sprintf "regress baselines %s: schema_version %d, expected %d" path v
           Report.schema_version)
  | None -> failwith (path ^ ": not a report document (no schema_version)"));
  (match Option.bind (Report.member "benchmark" doc) Report.to_str with
  | Some b when b = benchmark_name -> ()
  | other ->
      failwith
        (Printf.sprintf "%s: benchmark %S, expected %S" path
           (Option.value ~default:"<none>" other)
           benchmark_name));
  let tolerance = Option.bind (Report.member "tolerance_pct" doc) Report.to_float in
  match Report.member "metrics" doc with
  | Some (Report.Obj fields) ->
      ( tolerance,
        List.map
          (fun (name, v) ->
            match Report.to_int v with
            | Some n -> (name, n)
            | None -> failwith (Printf.sprintf "%s: metric %s is not an integer" path name))
          fields )
  | _ -> failwith (path ^ ": no metrics object")

let outcome_report o =
  Report.bench ~name:"regress"
    [
      ("tolerance_pct", Report.Float o.tolerance_pct);
      ("metrics_checked", Report.Int (List.length o.drifts));
      ("failures", Report.List (List.map (fun f -> Report.Str f) (failures o)));
      ( "drifts",
        Report.Obj
          (List.map
             (fun d ->
               ( d.name,
                 Report.Obj
                   [
                     ("baseline", Report.Int d.baseline);
                     ("current", Report.Int d.current);
                     ("drift_pct", Report.Float d.drift_pct);
                     ("ok", Report.Bool d.ok);
                   ] ))
             o.drifts) );
    ]
