(** The user-level API — the "libc" of the simulation.

    Guest programs are OCaml closures over a {!t}. All memory lives in the
    simulated address space and is accessed through the application's [App]
    view of the VMM (plaintext for cloaked processes); all syscalls go
    through [env.dispatch] so the Overshadow shim can interpose. Failed
    syscalls raise {!Guest.Errno.Error}. *)

type t

val of_env : Guest.Abi.env -> t
val env : t -> Guest.Abi.env
val pid : t -> int
val cloaked : t -> bool

(** {1 Memory} *)

val malloc : t -> int -> Machine.Addr.vaddr
(** Bump-allocate in the heap (8-byte aligned), growing the break as
    needed. There is no free: programs are short-lived workloads. *)

val load : t -> vaddr:Machine.Addr.vaddr -> len:int -> bytes
val store : t -> vaddr:Machine.Addr.vaddr -> bytes -> unit
val load_byte : t -> vaddr:Machine.Addr.vaddr -> int
val store_byte : t -> vaddr:Machine.Addr.vaddr -> int -> unit

val touch : t -> access:Machine.Fault.access -> vaddr:Machine.Addr.vaddr -> len:int -> unit
(** Charge for (and fault in) an access without materializing data; the
    fast path for compute-kernel inner loops. *)

val compute : t -> cycles:int -> unit
(** Burn pure CPU: charges the cycle account and yields to the timer at
    every quantum, so cloaked processes pay their interrupt-transfer tax. *)

(** {1 Processes} *)

val getpid : t -> int
val getppid : t -> int
val yield : t -> unit
val exit : t -> int -> 'a
val fork : t -> child:Guest.Abi.program -> int
val exec : t -> Guest.Abi.program -> 'a
(** Replace the image, keeping the current cloaking state. *)

val exec_cloaked : t -> Guest.Abi.program -> 'a
(** Exec an "encrypted binary": the fresh image runs cloaked. *)

val exec_uncloaked : t -> Guest.Abi.program -> 'a
val wait : t -> int * int
(** Reap a child: (pid, status). *)

val sbrk : t -> pages:int -> Machine.Addr.vpn
val mmap : t -> pages:int -> ?cloaked:bool -> unit -> Machine.Addr.vpn
val munmap : t -> start_vpn:Machine.Addr.vpn -> pages:int -> unit

(** {1 Files and pipes} *)

val openf : t -> string -> Guest.Abi.open_flag list -> int
val close : t -> int -> unit
val read : t -> fd:int -> vaddr:Machine.Addr.vaddr -> len:int -> int
val write : t -> fd:int -> vaddr:Machine.Addr.vaddr -> len:int -> int
val read_bytes : t -> fd:int -> len:int -> bytes
(** Read through a heap bounce buffer; loops until [len] or EOF. *)

val write_bytes : t -> fd:int -> bytes -> unit
(** Write all of the buffer through a heap bounce buffer. *)

val lseek : t -> fd:int -> pos:int -> whence:Guest.Abi.whence -> int
val stat : t -> string -> Guest.Abi.stat
val fstat : t -> int -> Guest.Abi.stat
val unlink : t -> string -> unit
val rename : t -> src:string -> dst:string -> unit
val mkdir : t -> string -> unit
val readdir : t -> string -> string list
val pipe : t -> int * int
(** (read fd, write fd). *)

val dup : t -> int -> int
val sync : t -> unit

(** {1 Supervision} *)

val checkpoint : t -> int
(** Ask the supervisor to capture a sealed checkpoint at this quiesce
    point; returns the new seal generation. Raises [Errno.Error EINVAL]
    for unsupervised processes. *)

val restored : t -> bool
(** True when this image was respawned from a sealed checkpoint:
    restart-aware programs skip initialization and reattach to their
    restored cloaked state instead. *)

val incarnation : t -> int
(** 0 on first spawn, then the supervisor's restart count. *)

(** {1 Signals} *)

val kill : t -> pid:int -> signum:int -> unit
val on_signal : t -> signum:int -> (int -> unit) -> unit
(** Install a user handler, run by the dispatch loop on delivery. *)

val ignore_signal : t -> signum:int -> unit
val default_signal : t -> signum:int -> unit

val syscall : t -> Guest.Abi.call -> Guest.Abi.value
(** Escape hatch used by the shim and by tests. *)
