open Machine
open Guest

type t = {
  env : Abi.env;
  mutable brk_vaddr : int;     (* cached break (exclusive) *)
  mutable tick_accum : int;    (* cycles since the last timer tick *)
  mutable bounce : Addr.vaddr; (* heap buffer for read_bytes/write_bytes *)
  mutable bounce_len : int;
}

let env t = t.env
let pid t = t.env.Abi.pid
let cloaked t = t.env.Abi.cloaked

(* Unwrap a syscall result: run user signal handlers for Signaled wrappers,
   raise on errors. *)
let rec unwrap t (v : Abi.value) =
  match v with
  | Abi.Signaled (signum, inner) ->
      (match Hashtbl.find_opt t.env.Abi.handlers signum with
      | Some handler -> handler signum
      | None -> ());
      unwrap t inner
  | Abi.Err e -> raise (Errno.Error e)
  | v -> v

let syscall t call = unwrap t (t.env.Abi.dispatch call)

let expect_int t call =
  match syscall t call with
  | Abi.Int n -> n
  | _ -> invalid_arg "Uapi: syscall returned an unexpected shape"

let expect_unit t call =
  match syscall t call with
  | Abi.Unit -> ()
  | _ -> invalid_arg "Uapi: syscall returned an unexpected shape"

let of_env env =
  {
    env;
    brk_vaddr = env.Abi.heap_cursor;
    tick_accum = 0;
    bounce = 0;
    bounce_len = 0;
  }

(* --- memory access with fault-retry --- *)

let app_ctx t = Cloak.Context.app t.env.Abi.asid

let rec with_fault_retry t f =
  try f ()
  with Fault.Guest_page_fault pf ->
    (* report to the kernel; it resolves the fault or kills us *)
    expect_unit t (Abi.Fault pf);
    with_fault_retry t f

let load t ~vaddr ~len =
  with_fault_retry t (fun () -> Cloak.Vmm.read t.env.Abi.vmm ~ctx:(app_ctx t) ~vaddr ~len)

let store t ~vaddr data =
  with_fault_retry t (fun () -> Cloak.Vmm.write t.env.Abi.vmm ~ctx:(app_ctx t) ~vaddr data)

let load_byte t ~vaddr =
  with_fault_retry t (fun () -> Cloak.Vmm.read_byte t.env.Abi.vmm ~ctx:(app_ctx t) ~vaddr)

let store_byte t ~vaddr v =
  with_fault_retry t (fun () -> Cloak.Vmm.write_byte t.env.Abi.vmm ~ctx:(app_ctx t) ~vaddr v)

let touch t ~access ~vaddr ~len =
  with_fault_retry t (fun () ->
      Cloak.Vmm.touch t.env.Abi.vmm ~ctx:(app_ctx t) ~access ~vaddr ~len)

(* --- heap --- *)

let sbrk t ~pages = expect_int t (Abi.Sbrk pages)

let malloc t size =
  if size < 0 then invalid_arg "Uapi.malloc: negative size";
  let aligned = (size + 7) land lnot 7 in
  let addr = t.env.Abi.heap_cursor in
  let needed_end = addr + aligned in
  if needed_end > t.brk_vaddr then begin
    let grow_pages = Addr.pages_spanned t.brk_vaddr (needed_end - t.brk_vaddr) in
    (* pages_spanned counts from an aligned base conservatively enough, but
       grow at least one page *)
    let grow_pages = max 1 grow_pages in
    ignore (sbrk t ~pages:grow_pages);
    t.brk_vaddr <- t.brk_vaddr + (grow_pages * Addr.page_size)
  end;
  t.env.Abi.heap_cursor <- needed_end;
  addr

(* --- compute loop --- *)

let compute t ~cycles =
  let remaining = ref cycles in
  while !remaining > 0 do
    let quantum = t.env.Abi.quantum in
    let chunk = min !remaining (quantum - t.tick_accum) in
    Cloak.Vmm.charge t.env.Abi.vmm chunk;
    t.tick_accum <- t.tick_accum + chunk;
    remaining := !remaining - chunk;
    if t.tick_accum >= quantum then begin
      t.tick_accum <- 0;
      ignore (syscall t Abi.Tick)
    end
  done

(* --- processes --- *)

let getpid t = expect_int t Abi.Getpid
let getppid t = expect_int t Abi.Getppid
let yield t = expect_unit t Abi.Yield

let exit t status =
  ignore (t.env.Abi.dispatch (Abi.Exit status));
  (* the kernel unwinds us with Exited before we get here *)
  raise (Abi.Exited status)

let fork t ~child = expect_int t (Abi.Fork child)

let exec_call t prog cloak =
  ignore (t.env.Abi.dispatch (Abi.Exec { prog; cloak }));
  raise (Abi.Exec_replace prog)

let exec t prog = exec_call t prog None
let exec_cloaked t prog = exec_call t prog (Some true)
let exec_uncloaked t prog = exec_call t prog (Some false)

let wait t =
  match syscall t Abi.Wait with
  | Abi.Pair (pid, status) -> (pid, status)
  | _ -> invalid_arg "Uapi.wait: unexpected result shape"

let mmap t ~pages ?(cloaked = true) () = expect_int t (Abi.Mmap { pages; cloaked })
let munmap t ~start_vpn ~pages = expect_unit t (Abi.Munmap { start_vpn; pages })

(* --- files --- *)

let openf t path flags = expect_int t (Abi.Open { path; flags })
let close t fd = expect_unit t (Abi.Close fd)
let read t ~fd ~vaddr ~len = expect_int t (Abi.Read { fd; vaddr; len })
let write t ~fd ~vaddr ~len = expect_int t (Abi.Write { fd; vaddr; len })
let lseek t ~fd ~pos ~whence = expect_int t (Abi.Lseek { fd; pos; whence })

let stat t path =
  match syscall t (Abi.Stat path) with
  | Abi.Stat_v s -> s
  | _ -> invalid_arg "Uapi.stat: unexpected result shape"

let fstat t fd =
  match syscall t (Abi.Fstat fd) with
  | Abi.Stat_v s -> s
  | _ -> invalid_arg "Uapi.fstat: unexpected result shape"

let unlink t path = expect_unit t (Abi.Unlink path)
let rename t ~src ~dst = expect_unit t (Abi.Rename { src; dst })
let mkdir t path = expect_unit t (Abi.Mkdir path)

let readdir t path =
  match syscall t (Abi.Readdir path) with
  | Abi.Names names -> names
  | _ -> invalid_arg "Uapi.readdir: unexpected result shape"

let pipe t =
  match syscall t Abi.Pipe with
  | Abi.Pair (r, w) -> (r, w)
  | _ -> invalid_arg "Uapi.pipe: unexpected result shape"

let dup t fd = expect_int t (Abi.Dup fd)
let sync t = expect_unit t Abi.Sync

(* --- supervision --- *)

let checkpoint t = expect_int t Abi.Checkpoint
let restored t = t.env.Abi.restored
let incarnation t = t.env.Abi.incarnation

let bounce_buffer t len =
  if t.bounce_len < len then begin
    t.bounce <- malloc t len;
    t.bounce_len <- len
  end;
  t.bounce

let read_bytes t ~fd ~len =
  let vaddr = bounce_buffer t len in
  let out = Buffer.create len in
  let remaining = ref len in
  let eof = ref false in
  while !remaining > 0 && not !eof do
    let n = read t ~fd ~vaddr ~len:!remaining in
    if n = 0 then eof := true
    else begin
      Buffer.add_bytes out (load t ~vaddr ~len:n);
      remaining := !remaining - n
    end
  done;
  Buffer.to_bytes out

let write_bytes t ~fd data =
  let len = Bytes.length data in
  let vaddr = bounce_buffer t len in
  store t ~vaddr data;
  let written = ref 0 in
  while !written < len do
    let n = write t ~fd ~vaddr:(vaddr + !written) ~len:(len - !written) in
    written := !written + n
  done

(* --- signals --- *)

let kill t ~pid ~signum = expect_unit t (Abi.Kill { pid; signum })

let on_signal t ~signum handler =
  Hashtbl.replace t.env.Abi.handlers signum handler;
  expect_unit t (Abi.Signal { signum; disposition = Abi.Handled })

let ignore_signal t ~signum =
  Hashtbl.remove t.env.Abi.handlers signum;
  expect_unit t (Abi.Signal { signum; disposition = Abi.Ignore })

let default_signal t ~signum =
  Hashtbl.remove t.env.Abi.handlers signum;
  expect_unit t (Abi.Signal { signum; disposition = Abi.Default })
