(* Bounded ring: a Queue of retained lines plus a count of evictions.
   Sequence stamps come from the monotone [seq] so the retained window of
   two same-seed runs is still comparable line-for-line even after the
   ring has wrapped. *)

type t = {
  ring : string Queue.t;
  cap : int;
  mutable seq : int;
  mutable dropped : int;
}

let default_cap = 65536

let create ?(cap = default_cap) () =
  { ring = Queue.create (); cap = max 1 cap; seq = 0; dropped = 0 }

let record t fmt =
  Format.kasprintf
    (fun line ->
      if Queue.length t.ring >= t.cap then begin
        ignore (Queue.pop t.ring);
        t.dropped <- t.dropped + 1
      end;
      Queue.push (Printf.sprintf "#%03d %s" t.seq line) t.ring;
      t.seq <- t.seq + 1)
    fmt

let lines t = List.of_seq (Queue.to_seq t.ring)
let count t = t.seq
let dropped t = t.dropped

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter (fun l -> Format.fprintf ppf "%s@," l) (lines t);
  if t.dropped > 0 then Format.fprintf ppf "(… %d earlier entries dropped)@," t.dropped;
  Format.fprintf ppf "@]"
