type t = { mutable entries : string list; mutable seq : int }

let create () = { entries = []; seq = 0 }

let record t fmt =
  Format.kasprintf
    (fun line ->
      t.entries <- Printf.sprintf "#%03d %s" t.seq line :: t.entries;
      t.seq <- t.seq + 1)
    fmt

let lines t = List.rev t.entries
let count t = t.seq

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter (fun l -> Format.fprintf ppf "%s@," l) (lines t);
  Format.fprintf ppf "@]"
