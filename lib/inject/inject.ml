module Audit = Audit

type site =
  | Phys_alloc
  | Phys_write
  | Phys_free
  | Blk_alloc
  | Blk_read
  | Blk_write
  | Blk_free
  | Tlb_insert
  | Tlb_flush
  | Crypto_iv
  | Meta_export
  | Meta_import
  | Jrnl_append
  | Jrnl_ckpt
  | Seal_write
  | Restore
  | Mig_send
  | Mig_recv
  | Mig_ack
  | Hb_send
  | Host_power

let all_sites =
  [
    Phys_alloc; Phys_write; Phys_free; Blk_alloc; Blk_read; Blk_write; Blk_free;
    Tlb_insert; Tlb_flush; Crypto_iv; Meta_export; Meta_import; Jrnl_append;
    Jrnl_ckpt; Seal_write; Restore; Mig_send; Mig_recv; Mig_ack; Hb_send;
    Host_power;
  ]

let site_to_string = function
  | Phys_alloc -> "phys-alloc"
  | Phys_write -> "phys-write"
  | Phys_free -> "phys-free"
  | Blk_alloc -> "blk-alloc"
  | Blk_read -> "blk-read"
  | Blk_write -> "blk-write"
  | Blk_free -> "blk-free"
  | Tlb_insert -> "tlb-insert"
  | Tlb_flush -> "tlb-flush"
  | Crypto_iv -> "crypto-iv"
  | Meta_export -> "meta-export"
  | Meta_import -> "meta-import"
  | Jrnl_append -> "jrnl-append"
  | Jrnl_ckpt -> "jrnl-ckpt"
  | Seal_write -> "seal-write"
  | Restore -> "restore"
  | Mig_send -> "mig-send"
  | Mig_recv -> "mig-recv"
  | Mig_ack -> "mig-ack"
  | Hb_send -> "hb-send"
  | Host_power -> "host-power"

let site_of_string s =
  List.find_opt (fun site -> site_to_string site = s) all_sites

type action =
  | Bit_flip of int
  | Torn_write of int
  | Fail_scrub
  | Io_error
  | Short_read of int
  | Reorder
  | Reuse_iv
  | Exhaust
  | Stale_entry
  | Drop_insert
  | Crash_point
  | Drop
  | Duplicate
  | Delay of int

let action_to_string = function
  | Bit_flip off -> Printf.sprintf "bit-flip@%d" off
  | Torn_write keep -> Printf.sprintf "torn-write/%d" keep
  | Fail_scrub -> "fail-scrub"
  | Io_error -> "io-error"
  | Short_read len -> Printf.sprintf "short-read/%d" len
  | Reorder -> "reorder"
  | Reuse_iv -> "reuse-iv"
  | Exhaust -> "exhaust"
  | Stale_entry -> "stale-entry"
  | Drop_insert -> "drop-insert"
  | Crash_point -> "crash-point"
  | Drop -> "drop"
  | Duplicate -> "duplicate"
  | Delay n -> Printf.sprintf "delay/%d" n

exception Vmm_crash of string

let crashed site = raise (Vmm_crash (site_to_string site))

type trigger = { start : int; every : int; count : int }

let always = { start = 1; every = 1; count = max_int }
let once ~at = { start = at; every = 1; count = 1 }

type rule = { site : site; trigger : trigger; action : action }

type plan = { seed : int; rules : rule list }

let plan ?(seed = 0) rules = { seed; rules }

let pp_rule ppf r =
  Format.fprintf ppf "%s %s start=%d every=%d count=%s"
    (site_to_string r.site) (action_to_string r.action) r.trigger.start
    r.trigger.every
    (if r.trigger.count = max_int then "inf" else string_of_int r.trigger.count)

let pp_plan ppf p =
  Format.fprintf ppf "@[<v>plan seed=%d (%d rules)@," p.seed (List.length p.rules);
  List.iter (fun r -> Format.fprintf ppf "  %a@," pp_rule r) p.rules;
  Format.fprintf ppf "@]"

(* --- engine --- *)

type armed = { rule : rule; mutable fired : int }

type t = {
  plan : plan;
  armed : armed list;
  occurrences : (site, int) Hashtbl.t;
  audit : Audit.t;
  mutable injections : int;
}

let create ?audit plan =
  {
    plan;
    armed = List.map (fun rule -> { rule; fired = 0 }) plan.rules;
    occurrences = Hashtbl.create 16;
    audit = (match audit with Some a -> a | None -> Audit.create ());
    injections = 0;
  }

let audit t = t.audit
let injections t = t.injections
let the_plan t = t.plan

let matches occ (a : armed) =
  let { start; every; count } = a.rule.trigger in
  a.fired < count && occ >= start && (occ - start) mod every = 0

(* One hook-point probe: bump the site's occurrence counter and return the
   first matching rule's action, recording the hit in the audit log. Sites
   with no armed rules stay cheap — one hashtable bump and a short list
   scan. *)
let fire t site =
  let occ = 1 + Option.value ~default:0 (Hashtbl.find_opt t.occurrences site) in
  Hashtbl.replace t.occurrences site occ;
  let rec scan = function
    | [] -> None
    | a :: rest ->
        if a.rule.site = site && matches occ a then begin
          a.fired <- a.fired + 1;
          t.injections <- t.injections + 1;
          Audit.record t.audit "inject site=%s occ=%d action=%s"
            (site_to_string site) occ
            (action_to_string a.rule.action);
          Some a.rule.action
        end
        else scan rest
  in
  scan t.armed

let fire_opt t site = match t with None -> None | Some t -> fire t site

let occurrences t site =
  Option.value ~default:0 (Hashtbl.find_opt t.occurrences site)

(* --- seeded random plans for the chaos harness --- *)

(* Each entry pairs a site with the generators of actions that make sense
   there; the drawn parameters stay inside one 4 KiB page. *)
let menu =
  [
    (Phys_alloc, [ (fun _ -> Exhaust) ]);
    ( Phys_write,
      [ (fun r -> Bit_flip (Oscrypto.Prng.int r 4096));
        (fun r -> Torn_write (1 + Oscrypto.Prng.int r 4095)) ] );
    (Phys_free, [ (fun _ -> Fail_scrub) ]);
    (Blk_alloc, [ (fun _ -> Exhaust) ]);
    ( Blk_read,
      [ (fun _ -> Io_error);
        (fun r -> Short_read (1 + Oscrypto.Prng.int r 4095));
        (fun r -> Bit_flip (Oscrypto.Prng.int r 4096)) ] );
    ( Blk_write,
      [ (fun _ -> Io_error);
        (fun r -> Torn_write (1 + Oscrypto.Prng.int r 4095));
        (fun r -> Bit_flip (Oscrypto.Prng.int r 4096));
        (fun _ -> Reorder) ] );
    (Blk_free, [ (fun _ -> Fail_scrub) ]);
    (Tlb_insert, [ (fun _ -> Drop_insert) ]);
    (Tlb_flush, [ (fun _ -> Stale_entry) ]);
    (Crypto_iv, [ (fun _ -> Reuse_iv) ]);
    (Meta_export, [ (fun r -> Torn_write (Oscrypto.Prng.int r 64)) ]);
    (Meta_import, [ (fun r -> Bit_flip (Oscrypto.Prng.int r 256)) ]);
    (* Seal_write and Restore are deliberately absent: they only fire for
       supervised processes, which the generic chaos workload does not
       spawn — random rules against them would dilute plans to no effect.
       Sealed-checkpoint tampering is exercised by explicit plans in the
       seal tests and the attack suite. The Mig_* channel sites are absent
       for the same reason: only the migration harness opens a channel,
       and it builds its own hostile plans (see Harness.Migrate). Likewise
       Hb_send/Host_power: only the fleet harness probes them, from its
       own plan generator (see Harness.Fleet). *)
  ]

let random_plan ~seed =
  let r = Oscrypto.Prng.create ~seed:(seed lxor 0x1A7ECED) in
  let n_rules = 1 + Oscrypto.Prng.int r 5 in
  let rule _ =
    let site, gens = List.nth menu (Oscrypto.Prng.int r (List.length menu)) in
    let action = (List.nth gens (Oscrypto.Prng.int r (List.length gens))) r in
    let trigger =
      {
        start = 1 + Oscrypto.Prng.int r 40;
        every = 1 + Oscrypto.Prng.int r 7;
        count = 1 + Oscrypto.Prng.int r 3;
      }
    in
    { site; trigger; action }
  in
  { seed; rules = List.init n_rules rule }
