(** Deterministic fault-injection engine — the "hostile world" generator.

    Overshadow's guarantee is that a cloaked application stays private and
    intact even when everything beneath it misbehaves. This module makes
    that misbehaviour systematic: a seeded {e fault plan} is a list of
    [{site; trigger; action}] rules, and the layers that touch durable or
    security-critical state ({!Machine.Phys_mem}, {!Machine.Tlb},
    [Guest.Blockdev], [Cloak.Vmm]) probe the engine at named hook points.
    When a rule's trigger matches the site's occurrence count, the layer
    applies the hostile action — a bit-flip, a torn write, a transient I/O
    error, an IV reuse — and the hit is recorded in the shared audit log.

    Everything is deterministic: the same plan against the same workload
    produces the same injections, the same violations and a bit-identical
    audit log, which is what makes chaos failures replayable. *)

module Audit = Audit
(** Re-export: the deterministic, sequence-numbered event log shared by
    the engine and the VMM (see {!Audit.record}). *)

(** Named hook points in the simulated stack. *)
type site =
  | Phys_alloc   (** machine-page allocation (memory exhaustion) *)
  | Phys_write   (** DMA-path writes into machine pages *)
  | Phys_free    (** machine-page release (scrub failures) *)
  | Blk_alloc    (** block allocation on a device *)
  | Blk_read     (** device-to-memory DMA *)
  | Blk_write    (** memory-to-device DMA *)
  | Blk_free     (** block release back to the device free list *)
  | Tlb_insert   (** TLB entry installation *)
  | Tlb_flush    (** guest-initiated INVLPG processing *)
  | Crypto_iv    (** fresh-IV draws in the cloaking engine *)
  | Meta_export  (** protected-object metadata serialization *)
  | Meta_import  (** protected-object metadata verification *)
  | Jrnl_append  (** metadata-journal record append *)
  | Jrnl_ckpt    (** metadata-journal checkpoint write *)
  | Seal_write   (** sealed-checkpoint blob serialization *)
  | Restore      (** sealed-checkpoint verification before a restore *)
  | Mig_send     (** migration frame handed to the untrusted channel *)
  | Mig_recv     (** migration frame delivered to the destination VMM *)
  | Mig_ack      (** acknowledgement handed back over the channel *)
  | Hb_send      (** fleet heartbeat handed to the untrusted network *)
  | Host_power   (** a whole fleet host's power feed (Crash_point kills it) *)

val all_sites : site list
val site_to_string : site -> string

val site_of_string : string -> site option
(** Inverse of {!site_to_string}; used by the CLI's crash-matrix filters. *)

(** What the hostile world does when a rule fires. Layers interpret only
    the actions that make sense for them and ignore the rest. *)
type action =
  | Bit_flip of int     (** flip one bit, at this byte offset (mod length) *)
  | Torn_write of int   (** persist only the first [n] bytes *)
  | Fail_scrub          (** freed page keeps its contents (RAM remanence) *)
  | Io_error            (** transient device error; retryable *)
  | Short_read of int   (** DMA only the first [n] bytes of the block *)
  | Reorder             (** swap this write's payload with the next one's *)
  | Reuse_iv            (** entropy failure: repeat the previous IV *)
  | Exhaust             (** allocation fails as if the pool were empty *)
  | Stale_entry         (** skip the invalidation, leaving a stale entry *)
  | Drop_insert         (** lose the TLB insert *)
  | Crash_point         (** kill the whole VMM at this site — power cut *)
  | Drop                (** lose this frame in flight (lossy channel) *)
  | Duplicate           (** deliver this frame twice (replaying channel) *)
  | Delay of int        (** hold this frame back for [n] deliveries *)

val action_to_string : action -> string

exception Vmm_crash of string
(** The simulated power cut, carrying the site name it fired at. Raised by
    a layer that draws {!Crash_point}; deliberately NOT caught by the guest
    kernel's containment layers — it unwinds the entire simulated machine,
    exactly like pulling the plug. The crash harness catches it around
    [Kernel.run] and then exercises recovery replay against the surviving
    block-device contents. *)

val crashed : site -> 'a
(** Raise {!Vmm_crash} for [site]; layers call this on {!Crash_point},
    usually after leaving a deliberately torn partial write behind. *)

type trigger = { start : int; every : int; count : int }
(** Fires on site-occurrence numbers [start, start+every, ...] (1-based),
    at most [count] times. *)

val always : trigger
val once : at:int -> trigger

type rule = { site : site; trigger : trigger; action : action }
type plan = { seed : int; rules : rule list }

val plan : ?seed:int -> rule list -> plan
val random_plan : seed:int -> plan
(** A small plan drawn deterministically from [seed]: 1-6 rules over the
    full site menu with site-appropriate actions. *)

val pp_rule : Format.formatter -> rule -> unit
val pp_plan : Format.formatter -> plan -> unit

(** {1 Engine} *)

type t

val create : ?audit:Audit.t -> plan -> t
(** An engine with all rules armed. If [audit] is given, injection hits are
    recorded there (the VMM shares its audit log with the engine so
    injections and violations interleave in event order). *)

val fire : t -> site -> action option
(** Probe a hook point: bump the site's occurrence counter and return the
    first armed rule's action if one matches. *)

val fire_opt : t option -> site -> action option
(** [fire] through an optional engine; [None] engines never fire — the
    fast path when injection is disabled. *)

val audit : t -> Audit.t
val injections : t -> int
(** Total rule firings so far. *)

val occurrences : t -> site -> int
val the_plan : t -> plan
