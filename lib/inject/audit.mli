(** Bounded audit trail shared by the fault-injection engine, the VMM
    and the guest kernel's containment layer. Entries are sequence-numbered
    in the order they happen, so two runs of the same seeded scenario must
    produce bit-identical logs — the chaos harness's replay invariant.

    The in-memory log is a ring: once [cap] entries are retained, each new
    entry evicts the oldest and bumps a dropped counter. Determinism is
    asserted over the retained window (identical caps on identical runs
    retain identical windows), so multi-million-cycle soaks stay bounded
    without weakening the invariant. *)

type t

val default_cap : int
(** Retained-entry limit used when [create] is given no [cap] — large
    enough that short runs never wrap. *)

val create : ?cap:int -> unit -> t
(** [create ?cap ()] makes an empty trail retaining at most [cap] entries
    (default {!default_cap}; values below 1 are clamped to 1). *)

val record : t -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** Append one formatted line, stamped with the next sequence number.
    Evicts the oldest retained line when the ring is full. *)

val lines : t -> string list
(** Retained entries, oldest first. *)

val count : t -> int
(** Total entries ever recorded, including dropped ones. *)

val dropped : t -> int
(** Entries evicted from the ring so far. *)

val pp : Format.formatter -> t -> unit
