(** Append-only audit trail shared by the fault-injection engine, the VMM
    and the guest kernel's containment layer. Entries are sequence-numbered
    in the order they happen, so two runs of the same seeded scenario must
    produce bit-identical logs — the chaos harness's replay invariant. *)

type t

val create : unit -> t

val record : t -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** Append one formatted line, stamped with the next sequence number. *)

val lines : t -> string list
(** All entries, oldest first. *)

val count : t -> int
val pp : Format.formatter -> t -> unit
