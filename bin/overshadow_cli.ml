(* Command-line front end for the Overshadow reproduction.

     overshadow-cli kernel sort --cloaked     run one compute kernel
     overshadow-cli attack tamper-memory      run one malicious-OS attack
     overshadow-cli attack --all              run the whole catalog
     overshadow-cli counters --cloaked        run a workload, dump counters
     overshadow-cli chaos --seeds 25          seeded fault-injection sweep
     overshadow-cli recover --site blk-write  one crash + recovery replay, narrated
     overshadow-cli crash-matrix --seeds 20   every crash point x N seeds
     overshadow-cli soak --seeds 20           supervised availability soak
     overshadow-cli migrate --seeds 20        live migration over a hostile channel
     overshadow-cli fleet --seeds 20          fleet supervisor under hostile open-loop load
     overshadow-cli adversary --seeds 20      every workload under a malicious kernel
     overshadow-cli trace fileio --cloaked    flight-recorder latency decomposition
     overshadow-cli trace-overhead            prove the recorder costs zero model cycles
     overshadow-cli profile fileio --cloaked  exact cycle attribution + flamegraph export
     overshadow-cli regress                   perf-regression sentinel vs committed baselines
     overshadow-cli list                      what's available

   Run with no arguments for the full usage listing. The benchmark tables
   (E1-E8) live in `dune exec bench/main.exe`. *)

open Cmdliner

let run_spec_kernel name cloaked scale =
  match Workloads.Spec.find name with
  | exception Not_found ->
      Printf.eprintf "unknown kernel %s (try: %s)\n" name
        (String.concat ", " (List.map (fun k -> k.Workloads.Spec.name) Workloads.Spec.kernels));
      1
  | kernel ->
      let checksum = ref 0 in
      let result =
        Harness.run_program ~cloaked (fun env ->
            let u = Uapi.of_env env in
            checksum := kernel.Workloads.Spec.run u ~scale)
      in
      Printf.printf "kernel   : %s (scale %d, %s)\n" name scale
        (if cloaked then "cloaked" else "native");
      Printf.printf "checksum : %d\n" !checksum;
      Printf.printf "cycles   : %s\n" (Harness.Table.cycles result.Harness.cycles);
      if not (Harness.all_exited_zero result) then begin
        Printf.printf "process failed!\n";
        1
      end
      else 0

let run_attacks all name =
  let outcomes =
    if all then Attacks.run_all ()
    else
      match name with
      | Some n when List.mem n Attacks.names -> [ Attacks.run n ]
      | Some n ->
          Printf.eprintf "unknown attack %s\n" n;
          exit 1
      | None ->
          Printf.eprintf "give an attack name or --all (see `list`)\n";
          exit 1
  in
  List.iter (fun o -> Format.printf "%a@." Attacks.pp_outcome o) outcomes;
  let bad =
    List.exists
      (fun (o : Attacks.outcome) -> o.leaked || ((not o.detected) && o.violation <> None))
      outcomes
  in
  if bad then 1 else 0

let run_counters cloaked =
  let cfg = Workloads.Fileio.default in
  let result = Harness.run_program ~cloaked (Workloads.Fileio.run cfg ~use_shim:true) in
  Printf.printf "fileio workload (%s), %d operations, %s:\n\n"
    (if cloaked then "cloaked" else "native")
    cfg.Workloads.Fileio.operations
    (Harness.Table.cycles result.Harness.cycles);
  Format.printf "%a@." Machine.Counters.pp result.Harness.counters;
  if Harness.all_exited_zero result then 0 else 1

let run_chaos seeds base verbose bench_out =
  let reports = ref [] in
  let progress r =
    reports := r :: !reports;
    if verbose then Format.printf "%a@." Harness.Chaos.pp_report r
    else
      Printf.printf "seed %-10d %3d injections, %2d contained, %s\n"
        r.Harness.Chaos.seed r.Harness.Chaos.injections r.Harness.Chaos.contained
        (match (r.Harness.Chaos.crash, r.Harness.Chaos.leaks) with
        | Some m, _ -> "CRASH " ^ m
        | None, [] -> "clean"
        | None, l -> "LEAK " ^ String.concat ", " l)
  in
  let t0 = Sys.time () in
  let v =
    Harness.Chaos.run_seeds ~progress
      ~seeds:(Harness.Chaos.seeds_from ~base ~count:seeds)
      ()
  in
  let wall_s = Sys.time () -. t0 in
  Printf.printf
    "\n%d seeds (each run twice): %d injections, %d contained faults, %d security kills\n"
    v.Harness.Chaos.runs v.Harness.Chaos.total_injections v.Harness.Chaos.total_contained
    v.Harness.Chaos.security_kills;
  (match bench_out with
  | None -> ()
  | Some path ->
      Report.write ~path
        (Report.bench ~name:"chaos"
           [ ("seeds", Report.Int v.Harness.Chaos.runs);
             ("injections", Report.Int v.Harness.Chaos.total_injections);
             ("contained", Report.Int v.Harness.Chaos.total_contained);
             ("security_kills", Report.Int v.Harness.Chaos.security_kills);
             ("wall_s", Report.Float wall_s);
             ("failures", Report.Int (List.length v.Harness.Chaos.failures)) ]);
      Printf.printf "  wrote %s\n" path);
  (match v.Harness.Chaos.failures with
  | [] ->
      Printf.printf "all invariants held: no escapes, no leaks, deterministic replay\n"
  | fails ->
      List.iter (fun (seed, what) -> Printf.printf "FAILED seed %d: %s\n" seed what) fails);
  Harness.Chaos.exit_code v

let run_recover seed site at =
  match Inject.site_of_string site with
  | None ->
      Printf.eprintf "unknown site %s (try: %s)\n" site
        (String.concat ", " (List.map Inject.site_to_string Harness.Crash.crash_sites));
      1
  | Some site ->
      let point = { Harness.Crash.site; occurrence = at } in
      let o = Harness.Crash.run_point ~seed point in
      Format.printf "%a@." Harness.Crash.pp_outcome o;
      List.iter (fun line -> Printf.printf "    %s\n" line) o.Harness.Crash.audit;
      if o.Harness.Crash.failures = [] then 0 else 1

let run_crash_matrix seeds base per_site verbose bench_out =
  let progress o =
    if verbose then Format.printf "%a@." Harness.Crash.pp_outcome o
  in
  let t0 = Sys.time () in
  let v =
    Harness.Crash.run_matrix ~progress ~per_site
      ~seeds:(Harness.Crash.seeds_from ~base ~count:seeds)
      ()
  in
  let wall_s = Sys.time () -. t0 in
  Printf.printf
    "\n%d seeds, %d crash points (each run twice): %d power cuts fired\n"
    v.Harness.Crash.seeds v.Harness.Crash.points v.Harness.Crash.crashes;
  Printf.printf "  per site: %s\n"
    (String.concat ", "
       (List.map
          (fun (s, n) -> Printf.sprintf "%s=%d" (Inject.site_to_string s) n)
          v.Harness.Crash.site_points));
  Printf.printf
    "  recovery: %d ledger-committed bindings -> %d committed, %d redone, %d torn, %d quarantined\n"
    v.Harness.Crash.ledger_committed_total v.Harness.Crash.committed_total
    v.Harness.Crash.redone_total v.Harness.Crash.torn_total
    v.Harness.Crash.quarantined_total;
  Printf.printf
    "  journal (clean run avg): %d records, %d store writes, %d checkpoints over %d data writes\n"
    v.Harness.Crash.records_per_run v.Harness.Crash.store_writes_per_run
    v.Harness.Crash.checkpoints_per_run v.Harness.Crash.data_writes_per_run;
  (match bench_out with
  | None -> ()
  | Some path ->
      let overhead =
        if v.Harness.Crash.data_writes_per_run = 0 then 0.0
        else
          float_of_int v.Harness.Crash.store_writes_per_run
          /. float_of_int v.Harness.Crash.data_writes_per_run
      in
      Report.write ~path
        (Report.bench ~name:"recovery"
           [ ("seeds", Report.Int v.Harness.Crash.seeds);
             ("crash_points", Report.Int v.Harness.Crash.points);
             ("crashes_fired", Report.Int v.Harness.Crash.crashes);
             ( "sites",
               Report.Obj
                 (List.map
                    (fun (s, n) -> (Inject.site_to_string s, Report.Int n))
                    v.Harness.Crash.site_points) );
             ("ledger_committed", Report.Int v.Harness.Crash.ledger_committed_total);
             ("recovered_committed", Report.Int v.Harness.Crash.committed_total);
             ("recovered_redone", Report.Int v.Harness.Crash.redone_total);
             ("torn_quarantined", Report.Int v.Harness.Crash.torn_total);
             ("replay_total_s", Report.Float v.Harness.Crash.replay_s_total);
             ( "replay_mean_ms",
               Report.Float
                 (if v.Harness.Crash.points = 0 then 0.0
                  else
                    1000.0 *. v.Harness.Crash.replay_s_total
                    /. float_of_int (2 * v.Harness.Crash.points)) );
             ("journal_records_per_run", Report.Int v.Harness.Crash.records_per_run);
             ( "journal_store_writes_per_run",
               Report.Int v.Harness.Crash.store_writes_per_run );
             ( "journal_checkpoints_per_run",
               Report.Int v.Harness.Crash.checkpoints_per_run );
             ("data_writes_per_run", Report.Int v.Harness.Crash.data_writes_per_run);
             ("journal_writes_per_data_write", Report.Float overhead);
             ("wall_s", Report.Float wall_s);
             ("failures", Report.Int (List.length v.Harness.Crash.failures)) ]);
      Printf.printf "  wrote %s\n" path);
  match v.Harness.Crash.failures with
  | [] ->
      Printf.printf
        "all invariants held: no committed-data loss, no torn-state acceptance, deterministic replay\n";
      0
  | fails ->
      List.iter (fun (seed, what) -> Printf.printf "FAILED seed %d: %s\n" seed what) fails;
      1

let run_soak seeds base verbose bench_out =
  let progress (r : Harness.Soak.seed_report) =
    if verbose || r.Harness.Soak.failures <> [] then
      Format.printf "%a@." Harness.Soak.pp_seed_report r
  in
  let t0 = Sys.time () in
  let v =
    Harness.Soak.run_seeds ~progress
      ~seeds:(Harness.Chaos.seeds_from ~base ~count:seeds)
      ()
  in
  let wall_s = Sys.time () -. t0 in
  Printf.printf "%s\n" (Harness.Soak.summary_line v);
  Printf.printf
    "  useful work: %d units supervised vs %d unsupervised, %d checkpoints sealed\n"
    v.Harness.Soak.total_units_sup v.Harness.Soak.total_units_unsup
    v.Harness.Soak.total_checkpoints;
  (match bench_out with
  | None -> ()
  | Some path ->
      Report.write ~path
        (Report.bench ~name:"availability"
           [ ("seeds", Report.Int v.Harness.Soak.seeds_run);
             ("rounds_per_run", Report.Int Harness.Soak.rounds);
             ("availability_supervised", Report.Float v.Harness.Soak.availability_sup);
             ( "availability_unsupervised",
               Report.Float v.Harness.Soak.availability_unsup );
             ("mttr_cycles", Report.Float v.Harness.Soak.mttr_cycles);
             ("restarts", Report.Int v.Harness.Soak.total_restarts);
             ("circuit_breaks", Report.Int v.Harness.Soak.total_circuit_breaks);
             ("checkpoints", Report.Int v.Harness.Soak.total_checkpoints);
             ("units_supervised", Report.Int v.Harness.Soak.total_units_sup);
             ("units_unsupervised", Report.Int v.Harness.Soak.total_units_unsup);
             ("wall_s", Report.Float wall_s);
             ("failures", Report.Int (List.length v.Harness.Soak.failures)) ]);
      Printf.printf "  wrote %s\n" path);
  (match v.Harness.Soak.failures with
  | [] when v.Harness.Soak.total_units_sup > v.Harness.Soak.total_units_unsup ->
      Printf.printf
        "all invariants held: privacy across restarts, no stale-checkpoint acceptance, deterministic audit\n"
  | [] ->
      Printf.printf
        "FAILED: supervision did not beat its absence (%d units vs %d)\n"
        v.Harness.Soak.total_units_sup v.Harness.Soak.total_units_unsup
  | fails ->
      List.iter (fun (seed, what) -> Printf.printf "FAILED seed %d: %s\n" seed what) fails);
  Harness.Soak.exit_code v

let run_migrate seeds base crash_seeds verbose bench_out =
  let progress (r : Harness.Migrate.seed_report) =
    if verbose || r.Harness.Migrate.failures <> [] then
      Format.printf "%a@." Harness.Migrate.pp_seed_report r
  in
  let t0 = Sys.time () in
  let v =
    Harness.Migrate.run_seeds ~progress
      ~seeds:(Harness.Chaos.seeds_from ~base ~count:seeds)
      ()
  in
  let c =
    Harness.Migrate.run_crash_matrix
      ~seeds:(Harness.Chaos.seeds_from ~base ~count:crash_seeds)
      ()
  in
  let wall_s = Sys.time () -. t0 in
  Printf.printf "%s\n" (Harness.Migrate.summary_line v);
  Printf.printf
    "  crash matrix: %d points over the channel sites, %d post-fence, %d failures\n"
    c.Harness.Migrate.crash_points c.Harness.Migrate.crash_fenced
    (List.length c.Harness.Migrate.matrix_failures);
  (match bench_out with
  | None -> ()
  | Some path ->
      Report.write ~path
        (Report.bench ~name:"migration"
           [ ("seeds", Report.Int v.Harness.Migrate.seeds_run);
             ("rounds_per_run", Report.Int Harness.Migrate.rounds);
             ("clean_committed", Report.Int v.Harness.Migrate.clean_committed);
             ("hostile_committed", Report.Int v.Harness.Migrate.hostile_committed);
             ("hostile_aborted", Report.Int v.Harness.Migrate.hostile_aborted);
             ("attempts", Report.Int v.Harness.Migrate.total_attempts);
             ("retries", Report.Int v.Harness.Migrate.total_retries);
             ("chunk_mac_failures", Report.Int v.Harness.Migrate.total_mac_failures);
             ("breaker_trips", Report.Int v.Harness.Migrate.total_breaker_trips);
             ("downtime_p50_cycles", Report.Int v.Harness.Migrate.p50_downtime);
             ("downtime_p95_cycles", Report.Int v.Harness.Migrate.p95_downtime);
             ("wire_frames", Report.Int v.Harness.Migrate.total_wire_frames);
             ("crash_points", Report.Int c.Harness.Migrate.crash_points);
             ("crash_fenced", Report.Int c.Harness.Migrate.crash_fenced);
             ("wall_s", Report.Float wall_s);
             ( "failures",
               Report.Int
                 (List.length v.Harness.Migrate.failures
                 + List.length c.Harness.Migrate.matrix_failures) ) ]);
      Printf.printf "  wrote %s\n" path);
  (match (v.Harness.Migrate.failures, c.Harness.Migrate.matrix_failures) with
  | [], [] ->
      Printf.printf
        "all invariants held: one incarnation, no wire plaintext, no replayed or \
         tampered blob accepted, bounded downtime, deterministic audit\n"
  | fails, cfails ->
      List.iter (fun (seed, what) -> Printf.printf "FAILED seed %d: %s\n" seed what) fails;
      List.iter (fun (point, what) -> Printf.printf "FAILED %s: %s\n" point what) cfails);
  Harness.Migrate.exit_code v c

let timeline_json tl =
  Report.List
    (List.map
       (fun (w, adm, good, p99) ->
         Report.Obj
           [ ("window", Report.Int w);
             ("admitted", Report.Int adm);
             ("good", Report.Int good);
             ("p99_cycles", Report.Int p99) ])
       tl)

let run_fleet seeds base verbose bench_out =
  let progress (r : Harness.Fleet.seed_report) =
    if verbose || r.Harness.Fleet.failures <> [] then
      Format.printf "%a@." Harness.Fleet.pp_seed_report r
  in
  let t0 = Sys.time () in
  let v =
    Harness.Fleet.run_seeds ~progress
      ~seeds:(Harness.Fleet.seeds_from ~base ~count:seeds)
      ()
  in
  let wall_s = Sys.time () -. t0 in
  Printf.printf "%s\n" (Harness.Fleet.summary_line v);
  Printf.printf
    "  degradation: %d sheds (all typed), latency p95 %d / p99 %d cycles (worst seed)\n"
    v.Harness.Fleet.total_sheds v.Harness.Fleet.p95_latency v.Harness.Fleet.p99_latency;
  (match bench_out with
  | None -> ()
  | Some path ->
      Report.write ~path
        (Report.bench ~name:"fleet"
           [ ("seeds", Report.Int v.Harness.Fleet.seeds_run);
             ("hosts", Report.Int Harness.Fleet.n_hosts);
             ("ff_budget_pct_worst", Report.Float v.Harness.Fleet.ff_budget_pct);
             ("deaths", Report.Int v.Harness.Fleet.total_deaths);
             ("drains", Report.Int v.Harness.Fleet.total_drains);
             ("failovers", Report.Int v.Harness.Fleet.total_failovers);
             ("lost_processes", Report.Int v.Harness.Fleet.total_lost);
             ("hb_timeouts", Report.Int v.Harness.Fleet.total_hb_timeouts);
             ("sheds", Report.Int v.Harness.Fleet.total_sheds);
             ("double_resumes", Report.Int v.Harness.Fleet.total_double_resumes);
             ("goodput_supervised", Report.Int v.Harness.Fleet.sup_goodput);
             ("goodput_unsupervised", Report.Int v.Harness.Fleet.unsup_goodput);
             ("latency_p95_cycles", Report.Int v.Harness.Fleet.p95_latency);
             ("latency_p99_cycles", Report.Int v.Harness.Fleet.p99_latency);
             ("failover_downtime_p50_cycles", Report.Int v.Harness.Fleet.p50_downtime);
             ("failover_downtime_p95_cycles", Report.Int v.Harness.Fleet.p95_downtime);
             ("telemetry_samples", Report.Int v.Harness.Fleet.total_tel_samples);
             ("telemetry_spans", Report.Int v.Harness.Fleet.total_tel_spans);
             ("stitched_traces", Report.Int v.Harness.Fleet.total_stitched);
             ("burn_alerts_fast", Report.Int v.Harness.Fleet.total_burn_fast);
             ("burn_alerts_slow", Report.Int v.Harness.Fleet.total_burn_slow);
             ( "timelines",
               Report.List
                 (List.map
                    (fun (r : Harness.Fleet.seed_report) ->
                      Report.Obj
                        [ ("seed", Report.Int r.Harness.Fleet.seed);
                          ("supervised", timeline_json r.Harness.Fleet.sup_timeline);
                          ("unsupervised", timeline_json r.Harness.Fleet.unsup_timeline) ])
                    v.Harness.Fleet.reports) );
             ("wall_s", Report.Float wall_s);
             ("failures", Report.Int (List.length v.Harness.Fleet.failures)) ]);
      Printf.printf "  wrote %s\n" path);
  (match v.Harness.Fleet.failures with
  | [] ->
      Printf.printf
        "all invariants held: SLO fault-free, supervised goodput beats unsupervised, \
         exactly-once failover, typed sheds, no leaks, deterministic audit\n"
  | fails ->
      List.iter (fun (seed, what) -> Printf.printf "FAILED seed %d: %s\n" seed what) fails);
  Harness.Fleet.exit_code v

(* --- flight recorder --- *)

(* A workload name is either "fileio" or a SPEC-style compute kernel. *)
let traced_workload name =
  if name = "fileio" then
    Some
      (fun ~cloaked ~scale:_ ~trace ->
        let cfg = Workloads.Fileio.default in
        Harness.run_program ~cloaked ~trace (Workloads.Fileio.run cfg ~use_shim:true))
  else
    match Workloads.Spec.find name with
    | exception Not_found -> None
    | kernel ->
        Some
          (fun ~cloaked ~scale ~trace ->
            Harness.run_program ~cloaked ~trace (fun env ->
                let u = Uapi.of_env env in
                ignore (kernel.Workloads.Spec.run u ~scale)))

let workload_names () =
  "fileio" :: List.map (fun k -> k.Workloads.Spec.name) Workloads.Spec.kernels

let run_trace name cloaked scale json_out =
  match traced_workload name with
  | None ->
      Printf.eprintf "unknown workload %s (try: %s)\n" name
        (String.concat ", " (workload_names ()));
      1
  | Some run ->
      let trace = Trace.ring () in
      let result = run ~cloaked ~scale ~trace in
      Printf.printf "workload : %s (scale %d, %s)\n" name scale
        (if cloaked then "cloaked" else "native");
      Printf.printf "cycles   : %s\n" (Harness.Table.cycles result.Harness.cycles);
      Printf.printf "events   : %d recorded, %d dropped (ring capacity %d)\n"
        (Trace.count trace) (Trace.dropped trace) (Trace.capacity trace);
      Format.printf "%a@." Trace.pp_decomposition trace;
      (match json_out with
      | None -> ()
      | Some path ->
          let oc = open_out path in
          output_string oc (Trace.to_chrome_json trace);
          close_out oc;
          Printf.printf "wrote %s (load in chrome://tracing or Perfetto)\n" path);
      if Trace.Check.truncated trace then begin
        Printf.printf
          "invariant pass skipped: ring truncated (%d events dropped) — raise the \
           capacity to check this run\n"
          (Trace.dropped trace);
        if Harness.all_exited_zero result then 0 else 1
      end
      else begin
        match Trace.Check.verdict trace with
        | [] ->
            Printf.printf
              "trace invariants held: MAC-before-decrypt, scrub-before-free, \
               bump-before-restore, owner-only plaintext\n";
            if Harness.all_exited_zero result then 0 else 1
        | fails ->
            List.iter (fun f -> Printf.printf "TRACE INVARIANT FAILED: %s\n" f) fails;
            1
      end

let run_trace_overhead out =
  let workloads =
    [ ("fileio", true, 1);
      ((List.hd Workloads.Spec.kernels).Workloads.Spec.name, true, 1) ]
  in
  let timed f =
    let t0 = Sys.time () in
    let r = f () in
    (r, Sys.time () -. t0)
  in
  let rows, ok =
    List.fold_left
      (fun (rows, ok) (name, cloaked, scale) ->
        let run = Option.get (traced_workload name) in
        let baseline, base_s = timed (fun () -> run ~cloaked ~scale ~trace:Trace.null) in
        let null_r, null_s = timed (fun () -> run ~cloaked ~scale ~trace:Trace.null) in
        let ring = Trace.ring () in
        let ring_r, ring_s = timed (fun () -> run ~cloaked ~scale ~trace:ring) in
        let null_d = null_r.Harness.cycles - baseline.Harness.cycles in
        let ring_d = ring_r.Harness.cycles - baseline.Harness.cycles in
        Printf.printf
          "%-10s baseline %s | null sink %+d cy | ring sink %+d cy (%d events)\n"
          name
          (Harness.Table.cycles baseline.Harness.cycles)
          null_d ring_d (Trace.count ring);
        let row =
          Report.Obj
            [ ("workload", Report.Str name);
              ("baseline_cycles", Report.Int baseline.Harness.cycles);
              ("null_sink_cycles", Report.Int null_r.Harness.cycles);
              ("ring_sink_cycles", Report.Int ring_r.Harness.cycles);
              ("null_sink_delta_cycles", Report.Int null_d);
              ("ring_sink_delta_cycles", Report.Int ring_d);
              ("ring_events", Report.Int (Trace.count ring));
              ("baseline_wall_s", Report.Float base_s);
              ("null_sink_wall_s", Report.Float null_s);
              ("ring_sink_wall_s", Report.Float ring_s) ]
        in
        (row :: rows, ok && null_d = 0 && ring_d = 0))
      ([], true) workloads
  in
  (match out with
  | None -> ()
  | Some path ->
      Report.write ~path
        (Report.bench ~name:"trace_overhead"
           [ ("workloads", Report.List (List.rev rows));
             ("zero_model_cycle_overhead", Report.Bool ok) ]);
      Printf.printf "wrote %s\n" path);
  if ok then begin
    Printf.printf "trace sinks added zero model cycles on every workload\n";
    0
  end
  else begin
    Printf.printf "FAILED: a trace sink perturbed the cost model\n";
    1
  end

(* --- cycle-attribution profiler --- *)

let run_profile name cloaked scale diff_native out cap top_n =
  match traced_workload name with
  | None ->
      Printf.eprintf "unknown workload %s (try: %s)\n" name
        (String.concat ", " (workload_names ()));
      1
  | Some _ when diff_native && not cloaked ->
      Printf.eprintf "--diff-native compares a cloaked run against native; add --cloaked\n";
      1
  | Some run -> (
      let profiled ~cloaked =
        let trace = Trace.ring ~cap () in
        let result = run ~cloaked ~scale ~trace in
        let root =
          Printf.sprintf "%s-%s" name (if cloaked then "cloaked" else "native")
        in
        (result, trace,
         Profile.of_trace ~root ~total_cycles:result.Harness.cycles trace)
      in
      try
        let result, trace, p = profiled ~cloaked in
        Printf.printf "workload : %s (scale %d, %s)\n" name scale
          (if cloaked then "cloaked" else "native");
        Printf.printf "cycles   : %s\n" (Harness.Table.cycles result.Harness.cycles);
        Printf.printf "events   : %d recorded, %d dropped (ring capacity %d)\n\n"
          (Trace.count trace) (Trace.dropped trace) (Trace.capacity trace);
        Format.printf "%a@.@." (Profile.pp_tree ?min_pct:None) p;
        Format.printf "%a@." (Profile.pp_top ~n:top_n) p;
        (match out with
        | None -> ()
        | Some path ->
            let oc = open_out path in
            output_string oc (Profile.to_collapsed p);
            close_out oc;
            Printf.printf "\nwrote %s (collapsed stacks; feed to flamegraph.pl)\n" path);
        if diff_native then begin
          let _, _, native = profiled ~cloaked:false in
          Format.printf "@.%a@."
            (Profile.pp_diff ?n:None ~base_name:"native" ~cur_name:"cloaked")
            (Profile.diff ~base:native ~cur:p)
        end;
        if Harness.all_exited_zero result then 0 else 1
      with
      | Profile.Truncated dropped ->
          Printf.eprintf
            "cannot attribute: the trace ring wrapped and dropped %d events, so the \
             surviving stream would produce a wrong tree, not a partial one.\n\
             Re-run with a larger --cap (current %d).\n"
            dropped cap;
          1
      | Profile.Error msg ->
          Printf.eprintf "profile error: %s\n" msg;
          1)

(* --- perf-regression sentinel --- *)

let run_regress baselines tolerance update bench_out =
  if update then begin
    let metrics = Regress.suite () in
    let tol =
      Option.value tolerance ~default:Regress.default_tolerance_pct
    in
    Regress.write_baselines ~path:baselines ~tolerance_pct:tol metrics;
    Printf.printf "wrote %d baseline metrics to %s (cycle tolerance ±%.1f%%)\n"
      (List.length metrics) baselines tol;
    0
  end
  else if not (Sys.file_exists baselines) then begin
    Printf.eprintf "no baselines at %s — create them with --update-baselines\n"
      baselines;
    1
  end
  else
    match Regress.load_baselines ~path:baselines with
    | exception Failure msg ->
        Printf.eprintf "%s\n" msg;
        1
    | exception Report.Parse_error msg ->
        Printf.eprintf "%s\n" msg;
        1
    | file_tol, baseline ->
        let tolerance_pct =
          match tolerance with
          | Some t -> t
          | None -> Option.value file_tol ~default:Regress.default_tolerance_pct
        in
        let outcome =
          Regress.compare_metrics ~tolerance_pct ~baseline (Regress.suite ())
        in
        Format.printf "%a@." Regress.pp_outcome outcome;
        (match bench_out with
        | None -> ()
        | Some path ->
            Report.write ~path (Regress.outcome_report outcome);
            Printf.printf "wrote %s\n" path);
        if Regress.ok outcome then 0 else 1

let run_list () =
  Printf.printf "compute kernels:\n";
  List.iter (fun k -> Printf.printf "  %s\n" k.Workloads.Spec.name) Workloads.Spec.kernels;
  Printf.printf "\nattacks:\n";
  List.iter (fun n -> Printf.printf "  %s\n" n) Attacks.names;
  Printf.printf "\nbenchmark tables: dune exec bench/main.exe -- E1 E2 E3+E4 E5 E6 E7 E8 E8b\n";
  0

(* --- cmdliner plumbing --- *)

let cloaked_flag = Arg.(value & flag & info [ "cloaked" ] ~doc:"Run the program cloaked.")

let kernel_cmd =
  let kernel_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"KERNEL" ~doc:"Kernel name.")
  in
  let scale_arg =
    Arg.(value & opt int 1 & info [ "scale" ] ~docv:"N" ~doc:"Problem size multiplier.")
  in
  Cmd.v
    (Cmd.info "kernel" ~doc:"Run one SPEC-style compute kernel and report model cycles.")
    Term.(const run_spec_kernel $ kernel_arg $ cloaked_flag $ scale_arg)

let attack_cmd =
  let all_arg = Arg.(value & flag & info [ "all" ] ~doc:"Run the whole catalog.") in
  let attack_arg =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"ATTACK" ~doc:"Attack name.")
  in
  Cmd.v
    (Cmd.info "attack" ~doc:"Run malicious-OS attacks and report leak/detection outcomes.")
    Term.(const run_attacks $ all_arg $ attack_arg)

let counters_cmd =
  Cmd.v
    (Cmd.info "counters" ~doc:"Run the fileio workload and dump all VMM event counters.")
    Term.(const run_counters $ cloaked_flag)

let chaos_cmd =
  let seeds_arg =
    Arg.(value & opt int 10 & info [ "seeds" ] ~docv:"N" ~doc:"Number of seeded fault plans.")
  in
  let base_arg =
    Arg.(value & opt int 1 & info [ "base" ] ~docv:"SEED" ~doc:"First seed of the sweep.")
  in
  let verbose_arg =
    Arg.(value & flag & info [ "verbose" ] ~doc:"Print each run's fault plan and audit log.")
  in
  let bench_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "bench-out" ] ~docv:"FILE" ~doc:"Write a JSON benchmark summary to $(docv).")
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Run the workload under seeded random fault plans and check the hostile-world \
          invariants (containment, privacy, deterministic replay).")
    Term.(const run_chaos $ seeds_arg $ base_arg $ verbose_arg $ bench_out_arg)

let recover_cmd =
  let seed_arg =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Workload seed.")
  in
  let site_arg =
    Arg.(
      value
      & opt string "blk-write"
      & info [ "site" ] ~docv:"SITE"
          ~doc:"Crash site (jrnl-append, jrnl-ckpt, blk-write, blk-free).")
  in
  let at_arg =
    Arg.(value & opt int 1 & info [ "at" ] ~docv:"N" ~doc:"Site occurrence the power cut fires on.")
  in
  Cmd.v
    (Cmd.info "recover"
       ~doc:
         "Kill the VMM at one crash point, replay the metadata journal on a fresh \
          same-seed VMM, and print the classification and audit trail.")
    Term.(const run_recover $ seed_arg $ site_arg $ at_arg)

let crash_matrix_cmd =
  let seeds_arg =
    Arg.(value & opt int 20 & info [ "seeds" ] ~docv:"N" ~doc:"Number of workload seeds.")
  in
  let base_arg =
    Arg.(value & opt int 1 & info [ "base" ] ~docv:"SEED" ~doc:"First seed of the sweep.")
  in
  let per_site_arg =
    Arg.(
      value & opt int 6
      & info [ "per-site" ] ~docv:"N" ~doc:"Crash occurrences sampled per site per seed.")
  in
  let verbose_arg =
    Arg.(value & flag & info [ "verbose" ] ~doc:"Print every crash point's outcome.")
  in
  let bench_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "bench-out" ] ~docv:"FILE" ~doc:"Write a JSON benchmark summary to $(docv).")
  in
  Cmd.v
    (Cmd.info "crash-matrix"
       ~doc:
         "Power-cut the VMM at every journal/device write site across N seeds and \
          check the recovery invariants (no committed-data loss, no torn-state \
          acceptance, deterministic replay).")
    Term.(
      const run_crash_matrix $ seeds_arg $ base_arg $ per_site_arg $ verbose_arg
      $ bench_out_arg)

let soak_cmd =
  let seeds_arg =
    Arg.(value & opt int 20 & info [ "seeds" ] ~docv:"N" ~doc:"Number of workload seeds.")
  in
  let base_arg =
    Arg.(value & opt int 1 & info [ "base" ] ~docv:"SEED" ~doc:"First seed of the sweep.")
  in
  let verbose_arg =
    Arg.(value & flag & info [ "verbose" ] ~doc:"Print every seed's report, not just failures.")
  in
  let bench_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "bench-out" ] ~docv:"FILE" ~doc:"Write a JSON benchmark summary to $(docv).")
  in
  Cmd.v
    (Cmd.info "soak"
       ~doc:
         "Run the availability soak: a restart-aware cloaked service under sustained \
          lethal fault plans, supervised (sealed checkpoints + restart-with-backoff) \
          vs unsupervised, checking privacy across restarts, stale-checkpoint \
          rejection and audit determinism.")
    Term.(const run_soak $ seeds_arg $ base_arg $ verbose_arg $ bench_out_arg)

let migrate_cmd =
  let seeds_arg =
    Arg.(value & opt int 20 & info [ "seeds" ] ~docv:"N" ~doc:"Number of workload seeds.")
  in
  let base_arg =
    Arg.(value & opt int 1 & info [ "base" ] ~docv:"SEED" ~doc:"First seed of the sweep.")
  in
  let crash_seeds_arg =
    Arg.(
      value & opt int 3
      & info [ "crash-seeds" ] ~docv:"N"
          ~doc:"Seeds fed to the channel-site crash matrix.")
  in
  let verbose_arg =
    Arg.(value & flag & info [ "verbose" ] ~doc:"Print every seed's report, not just failures.")
  in
  let bench_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "bench-out" ] ~docv:"FILE" ~doc:"Write a JSON benchmark summary to $(docv).")
  in
  Cmd.v
    (Cmd.info "migrate"
       ~doc:
         "Live-migrate a cloaked process between two VMMs over a hostile, lossy \
          channel: clean, hostile and blackhole runs per seed plus a crash matrix \
          on the channel sites, checking single-incarnation, wire privacy, \
          replay/tamper rejection and bounded downtime.")
    Term.(
      const run_migrate $ seeds_arg $ base_arg $ crash_seeds_arg $ verbose_arg
      $ bench_out_arg)

let fleet_cmd =
  let seeds_arg =
    Arg.(value & opt int 20 & info [ "seeds" ] ~docv:"N" ~doc:"Number of workload seeds.")
  in
  let base_arg =
    Arg.(value & opt int 1 & info [ "base" ] ~docv:"SEED" ~doc:"First seed of the sweep.")
  in
  let verbose_arg =
    Arg.(value & flag & info [ "verbose" ] ~doc:"Print every seed's report, not just failures.")
  in
  let bench_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "bench-out" ] ~docv:"FILE" ~doc:"Write a JSON benchmark summary to $(docv).")
  in
  Cmd.v
    (Cmd.info "fleet"
       ~doc:
         "Run the fleet supervisor under hostile open-loop load: a multi-VMM fleet \
          of cloaked services behind a load balancer with heartbeat-based failure \
          detection, migration-based failover and typed load shedding, checking the \
          fault-free latency SLO, exactly-once failover, graceful degradation and \
          audit determinism.")
    Term.(const run_fleet $ seeds_arg $ base_arg $ verbose_arg $ bench_out_arg)

let run_telemetry seed chrome_out bench_out =
  let t0 = Sys.time () in
  let r = Harness.Observe.run ~seed () in
  let wall_s = Sys.time () -. t0 in
  Format.printf "%a@?" Harness.Observe.pp_report r;
  (match chrome_out with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      output_string oc r.Harness.Observe.o_chrome_json;
      close_out oc;
      Printf.printf "  wrote %s (one pid row per VMM host; load in chrome://tracing)\n"
        path);
  (match bench_out with
  | None -> ()
  | Some path ->
      Report.write ~path
        (Report.bench ~name:"telemetry"
           [ ("seed", Report.Int r.Harness.Observe.o_seed);
             ("cycles_registry_off", Report.Int r.Harness.Observe.o_cycles_off);
             ("cycles_registry_on", Report.Int r.Harness.Observe.o_cycles_on);
             ("delta_cycles", Report.Int (Harness.Observe.delta r));
             ( "zero_model_cycle_overhead",
               Report.Bool (Harness.Observe.zero_overhead r) );
             ("samples", Report.Int r.Harness.Observe.o_samples);
             ("spans", Report.Int r.Harness.Observe.o_spans);
             ("failovers", Report.Int r.Harness.Observe.o_failovers);
             ("stitched_traces", Report.Int r.Harness.Observe.o_stitched);
             ("burn_alerts_fast", Report.Int r.Harness.Observe.o_fast_alerts);
             ("burn_alerts_slow", Report.Int r.Harness.Observe.o_slow_alerts);
             ("worst_burn", Report.Float r.Harness.Observe.o_worst_burn);
             ("sup_timeline", timeline_json r.Harness.Observe.o_sup_timeline);
             ("unsup_timeline", timeline_json r.Harness.Observe.o_unsup_timeline);
             ("wall_s", Report.Float wall_s);
             ("failures", Report.Int (List.length r.Harness.Observe.o_failures)) ]);
      Printf.printf "  wrote %s\n" path);
  (match r.Harness.Observe.o_failures with
  | [] ->
      Printf.printf
        "telemetry plane held: zero model cycles with registries off, stitched \
         cross-host traces and burn-rate paging with them on, silence fault-free\n"
  | fails -> List.iter (fun f -> Printf.printf "FAILED: %s\n" f) fails);
  Harness.Observe.exit_code r

let telemetry_cmd =
  let seed_arg =
    Arg.(
      value & opt int 7
      & info [ "seed" ] ~docv:"SEED"
          ~doc:"Fleet scenario seed (default matches the regression sentinel's pin).")
  in
  let chrome_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "chrome-out" ] ~docv:"FILE"
          ~doc:
            "Export the enabled run's fleet-wide Chrome trace (one pid row per \
             VMM host) to $(docv).")
  in
  let bench_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "bench-out" ] ~docv:"FILE" ~doc:"Write a JSON benchmark summary to $(docv).")
  in
  Cmd.v
    (Cmd.info "telemetry"
       ~doc:
         "Prove the fleet telemetry plane free when disabled and load-bearing when \
          enabled: run one hostile fleet scenario with registries off then on, \
          assert identical model cycles, stitched cross-host causal traces for \
          every committed failover, burn-rate alerts on host death and silence \
          fault-free.")
    Term.(const run_telemetry $ seed_arg $ chrome_arg $ bench_out_arg)

let run_adversary seeds base verbose bench_out =
  let progress (r : Harness.Adversary.seed_report) =
    if verbose || r.Harness.Adversary.failures <> [] then
      Format.printf "%a@?" Harness.Adversary.pp_seed_report r
  in
  let t0 = Sys.time () in
  let v =
    Harness.Adversary.run_seeds ~progress
      ~seeds:(Harness.Adversary.seeds_from ~base ~count:seeds)
      ()
  in
  let wall_s = Sys.time () -. t0 in
  Printf.printf "%s\n" (Harness.Adversary.summary_line v);
  (match bench_out with
  | None -> ()
  | Some path ->
      Report.write ~path
        (Report.bench ~name:"adversary"
           [ ("seeds", Report.Int v.Harness.Adversary.seeds_run);
             ("classes", Report.Int (List.length Attacks.Adversary.classes));
             ("attacks", Report.Int v.Harness.Adversary.total_attacks);
             ("lies_detected", Report.Int v.Harness.Adversary.total_lies_detected);
             ("refusals", Report.Int v.Harness.Adversary.total_refusals);
             ("survived", Report.Int v.Harness.Adversary.total_survived);
             ("refused", Report.Int v.Harness.Adversary.total_refused);
             ("degraded", Report.Int v.Harness.Adversary.total_degraded);
             ("killed", Report.Int v.Harness.Adversary.total_killed);
             ("wall_s", Report.Float wall_s);
             ("failures", Report.Int (List.length v.Harness.Adversary.failures)) ]);
      Printf.printf "  wrote %s\n" path);
  (match v.Harness.Adversary.failures with
  | [] ->
      Printf.printf
        "all invariants held: zero plaintext leaks, zero silent corruptions \
         (fault-free digest or typed refusal), deterministic audit\n"
  | fails ->
      List.iter (fun (seed, what) -> Printf.printf "FAILED seed %d: %s\n" seed what) fails);
  Harness.Adversary.exit_code v

let adversary_cmd =
  let seeds_arg =
    Arg.(value & opt int 20 & info [ "seeds" ] ~docv:"N" ~doc:"Number of workload seeds.")
  in
  let base_arg =
    Arg.(value & opt int 1 & info [ "base" ] ~docv:"SEED" ~doc:"First seed of the sweep.")
  in
  let verbose_arg =
    Arg.(value & flag & info [ "verbose" ] ~doc:"Print every seed's report, not just failures.")
  in
  let bench_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "bench-out" ] ~docv:"FILE" ~doc:"Write a JSON benchmark summary to $(docv).")
  in
  Cmd.v
    (Cmd.info "adversary"
       ~doc:
         "Run every workload under the malicious-kernel personality: lying syscall \
          returns, address-space remap/replay, identity confusion and scheduling \
          attacks, per class per seed, checking zero plaintext leaks, zero silent \
          corruptions (fault-free digest or typed refusal) and audit determinism.")
    Term.(const run_adversary $ seeds_arg $ base_arg $ verbose_arg $ bench_out_arg)

let trace_cmd =
  let workload_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"WORKLOAD" ~doc:"Workload: $(b,fileio) or a compute kernel name.")
  in
  let scale_arg =
    Arg.(value & opt int 1 & info [ "scale" ] ~docv:"N" ~doc:"Problem size multiplier.")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Export the event stream as Chrome trace_event JSON to $(docv).")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run a workload under the flight recorder: print the per-span-class \
          latency decomposition (count, total cycles, p50/p95/p99), check the \
          trace-ordering invariants, and optionally export a Chrome trace.")
    Term.(const run_trace $ workload_arg $ cloaked_flag $ scale_arg $ json_arg)

let trace_overhead_cmd =
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE" ~doc:"Write a JSON benchmark summary to $(docv).")
  in
  Cmd.v
    (Cmd.info "trace-overhead"
       ~doc:
         "Prove the flight recorder is free in the cost model: run workloads with \
          the null sink and a live ring and assert the model cycle counts are \
          identical to the untraced baseline.")
    Term.(const run_trace_overhead $ out_arg)

let profile_cmd =
  let workload_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"WORKLOAD" ~doc:"Workload: $(b,fileio) or a compute kernel name.")
  in
  let scale_arg =
    Arg.(value & opt int 1 & info [ "scale" ] ~docv:"N" ~doc:"Problem size multiplier.")
  in
  let diff_arg =
    Arg.(
      value & flag
      & info [ "diff-native" ]
          ~doc:"Also run the workload uncloaked and print the differential profile.")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE"
          ~doc:"Write collapsed stacks (flamegraph.pl input) to $(docv).")
  in
  let cap_arg =
    Arg.(
      value & opt int 1_048_576
      & info [ "cap" ] ~docv:"N"
          ~doc:
            "Trace ring capacity. Attribution refuses a wrapped ring, so this must \
             hold the whole run.")
  in
  let top_arg =
    Arg.(value & opt int 10 & info [ "top" ] ~docv:"N" ~doc:"Rows in the hottest-contexts table.")
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Exact cycle attribution: fold the flight-recorder span stream into a \
          call-context tree (total/self cycles, counts), print it with the hottest \
          contexts, optionally export collapsed stacks and diff against a native run.")
    Term.(
      const run_profile $ workload_arg $ cloaked_flag $ scale_arg $ diff_arg $ out_arg
      $ cap_arg $ top_arg)

let regress_cmd =
  let baselines_arg =
    Arg.(
      value
      & opt string "bench/baselines.json"
      & info [ "baselines" ] ~docv:"FILE" ~doc:"Committed baselines file.")
  in
  let tolerance_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "tolerance" ] ~docv:"PCT"
          ~doc:"Cycle-drift budget in percent (overrides the file's; counters always match exactly).")
  in
  let update_arg =
    Arg.(
      value & flag
      & info [ "update-baselines" ]
          ~doc:"Re-measure the suite and rewrite the baselines file instead of comparing.")
  in
  let bench_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "bench-out" ] ~docv:"FILE" ~doc:"Write the drift table as JSON to $(docv).")
  in
  Cmd.v
    (Cmd.info "regress"
       ~doc:
         "The perf-regression sentinel: replay the E1/E2 suite plus the key VMM \
          counters and fail (non-zero) on any metric drifting beyond tolerance \
          against the committed baselines.")
    Term.(const run_regress $ baselines_arg $ tolerance_arg $ update_arg $ bench_out_arg)

let list_cmd =
  Cmd.v (Cmd.info "list" ~doc:"List available kernels and attacks.") Term.(const run_list $ const ())

(* Bare `overshadow-cli` prints this instead of cmdliner's terse usage
   error, so the tool is discoverable without reading the man page. *)
let usage_listing =
  [ ("kernel", "run one SPEC-style compute kernel and report model cycles");
    ("attack", "run malicious-OS attacks and report leak/detection outcomes");
    ("counters", "run the fileio workload and dump all VMM event counters");
    ("chaos", "seeded fault-injection sweep checking the hostile-world invariants");
    ("recover", "one crash point + metadata-journal recovery replay, narrated");
    ("crash-matrix", "power-cut every journal/device write site across N seeds");
    ("soak", "supervised availability soak under sustained lethal fault plans");
    ("migrate", "live-migrate a cloaked process over a hostile, lossy channel");
    ("fleet", "fleet supervisor: failover + graceful degradation under open-loop load");
    ("telemetry", "prove fleet telemetry free when off, stitched traces + burn alerts when on");
    ("adversary", "every workload under a malicious kernel: Iago lies, remap/replay, identity");
    ("trace", "flight-recorder latency decomposition for one workload");
    ("trace-overhead", "prove the recorder adds zero model cycles");
    ("profile", "exact cycle-attribution tree + flamegraph export (--diff-native)");
    ("regress", "perf-regression sentinel against committed baselines");
    ("list", "list available kernels and attacks") ]

let run_usage () =
  Printf.printf
    "overshadow-cli: Overshadow (ASPLOS 2008) reproduction — cloaked execution on a \
     simulated VMM.\n\nCommands:\n";
  List.iter (fun (n, d) -> Printf.printf "  %-15s %s\n" n d) usage_listing;
  Printf.printf
    "\nRun `overshadow-cli COMMAND --help` for options.\n\
     Benchmark tables (E1-E8): dune exec bench/main.exe\n";
  0

let () =
  let info =
    Cmd.info "overshadow-cli" ~version:"1.0"
      ~doc:"Overshadow (ASPLOS 2008) reproduction: cloaked execution on a simulated VMM."
  in
  exit
    (Cmd.eval'
       (Cmd.group ~default:Term.(const run_usage $ const ()) info
          [ kernel_cmd; attack_cmd; counters_cmd; chaos_cmd; recover_cmd; crash_matrix_cmd;
            soak_cmd; migrate_cmd; fleet_cmd; telemetry_cmd; adversary_cmd; trace_cmd;
            trace_overhead_cmd;
            profile_cmd;
            regress_cmd; list_cmd ]))
