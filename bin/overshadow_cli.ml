(* Command-line front end for the Overshadow reproduction.

     overshadow-cli kernel sort --cloaked     run one compute kernel
     overshadow-cli attack tamper-memory      run one malicious-OS attack
     overshadow-cli attack --all              run the whole catalog
     overshadow-cli counters --cloaked        run a workload, dump counters
     overshadow-cli chaos --seeds 25          seeded fault-injection sweep
     overshadow-cli recover --site blk-write  one crash + recovery replay, narrated
     overshadow-cli crash-matrix --seeds 20   every crash point x N seeds
     overshadow-cli soak --seeds 20           supervised availability soak
     overshadow-cli trace fileio --cloaked    flight-recorder latency decomposition
     overshadow-cli trace-overhead            prove the recorder costs zero model cycles
     overshadow-cli list                      what's available

   The benchmark tables (E1-E8) live in `dune exec bench/main.exe`. *)

open Cmdliner

let run_spec_kernel name cloaked scale =
  match Workloads.Spec.find name with
  | exception Not_found ->
      Printf.eprintf "unknown kernel %s (try: %s)\n" name
        (String.concat ", " (List.map (fun k -> k.Workloads.Spec.name) Workloads.Spec.kernels));
      1
  | kernel ->
      let checksum = ref 0 in
      let result =
        Harness.run_program ~cloaked (fun env ->
            let u = Uapi.of_env env in
            checksum := kernel.Workloads.Spec.run u ~scale)
      in
      Printf.printf "kernel   : %s (scale %d, %s)\n" name scale
        (if cloaked then "cloaked" else "native");
      Printf.printf "checksum : %d\n" !checksum;
      Printf.printf "cycles   : %s\n" (Harness.Table.cycles result.Harness.cycles);
      if not (Harness.all_exited_zero result) then begin
        Printf.printf "process failed!\n";
        1
      end
      else 0

let run_attacks all name =
  let outcomes =
    if all then Attacks.run_all ()
    else
      match name with
      | Some n when List.mem n Attacks.names -> [ Attacks.run n ]
      | Some n ->
          Printf.eprintf "unknown attack %s\n" n;
          exit 1
      | None ->
          Printf.eprintf "give an attack name or --all (see `list`)\n";
          exit 1
  in
  List.iter (fun o -> Format.printf "%a@." Attacks.pp_outcome o) outcomes;
  let bad =
    List.exists
      (fun (o : Attacks.outcome) -> o.leaked || ((not o.detected) && o.violation <> None))
      outcomes
  in
  if bad then 1 else 0

let run_counters cloaked =
  let cfg = Workloads.Fileio.default in
  let result = Harness.run_program ~cloaked (Workloads.Fileio.run cfg ~use_shim:true) in
  Printf.printf "fileio workload (%s), %d operations, %s:\n\n"
    (if cloaked then "cloaked" else "native")
    cfg.Workloads.Fileio.operations
    (Harness.Table.cycles result.Harness.cycles);
  Format.printf "%a@." Machine.Counters.pp result.Harness.counters;
  if Harness.all_exited_zero result then 0 else 1

let run_chaos seeds base verbose =
  let reports = ref [] in
  let progress r =
    reports := r :: !reports;
    if verbose then Format.printf "%a@." Harness.Chaos.pp_report r
    else
      Printf.printf "seed %-10d %3d injections, %2d contained, %s\n"
        r.Harness.Chaos.seed r.Harness.Chaos.injections r.Harness.Chaos.contained
        (match (r.Harness.Chaos.crash, r.Harness.Chaos.leaks) with
        | Some m, _ -> "CRASH " ^ m
        | None, [] -> "clean"
        | None, l -> "LEAK " ^ String.concat ", " l)
  in
  let v =
    Harness.Chaos.run_seeds ~progress
      ~seeds:(Harness.Chaos.seeds_from ~base ~count:seeds)
      ()
  in
  Printf.printf
    "\n%d seeds (each run twice): %d injections, %d contained faults, %d security kills\n"
    v.Harness.Chaos.runs v.Harness.Chaos.total_injections v.Harness.Chaos.total_contained
    v.Harness.Chaos.security_kills;
  match v.Harness.Chaos.failures with
  | [] ->
      Printf.printf "all invariants held: no escapes, no leaks, deterministic replay\n";
      0
  | fails ->
      List.iter (fun (seed, what) -> Printf.printf "FAILED seed %d: %s\n" seed what) fails;
      1

let run_recover seed site at =
  match Inject.site_of_string site with
  | None ->
      Printf.eprintf "unknown site %s (try: %s)\n" site
        (String.concat ", " (List.map Inject.site_to_string Harness.Crash.crash_sites));
      1
  | Some site ->
      let point = { Harness.Crash.site; occurrence = at } in
      let o = Harness.Crash.run_point ~seed point in
      Format.printf "%a@." Harness.Crash.pp_outcome o;
      List.iter (fun line -> Printf.printf "    %s\n" line) o.Harness.Crash.audit;
      if o.Harness.Crash.failures = [] then 0 else 1

let run_crash_matrix seeds base per_site verbose bench_out =
  let progress o =
    if verbose then Format.printf "%a@." Harness.Crash.pp_outcome o
  in
  let t0 = Sys.time () in
  let v =
    Harness.Crash.run_matrix ~progress ~per_site
      ~seeds:(Harness.Crash.seeds_from ~base ~count:seeds)
      ()
  in
  let wall_s = Sys.time () -. t0 in
  Printf.printf
    "\n%d seeds, %d crash points (each run twice): %d power cuts fired\n"
    v.Harness.Crash.seeds v.Harness.Crash.points v.Harness.Crash.crashes;
  Printf.printf "  per site: %s\n"
    (String.concat ", "
       (List.map
          (fun (s, n) -> Printf.sprintf "%s=%d" (Inject.site_to_string s) n)
          v.Harness.Crash.site_points));
  Printf.printf
    "  recovery: %d ledger-committed bindings -> %d committed, %d redone, %d torn, %d quarantined\n"
    v.Harness.Crash.ledger_committed_total v.Harness.Crash.committed_total
    v.Harness.Crash.redone_total v.Harness.Crash.torn_total
    v.Harness.Crash.quarantined_total;
  Printf.printf
    "  journal (clean run avg): %d records, %d store writes, %d checkpoints over %d data writes\n"
    v.Harness.Crash.records_per_run v.Harness.Crash.store_writes_per_run
    v.Harness.Crash.checkpoints_per_run v.Harness.Crash.data_writes_per_run;
  (match bench_out with
  | None -> ()
  | Some path ->
      let overhead =
        if v.Harness.Crash.data_writes_per_run = 0 then 0.0
        else
          float_of_int v.Harness.Crash.store_writes_per_run
          /. float_of_int v.Harness.Crash.data_writes_per_run
      in
      let json =
        Printf.sprintf
          "{\n\
          \  \"benchmark\": \"recovery\",\n\
          \  \"seeds\": %d,\n\
          \  \"crash_points\": %d,\n\
          \  \"crashes_fired\": %d,\n\
          \  \"sites\": {%s},\n\
          \  \"ledger_committed\": %d,\n\
          \  \"recovered_committed\": %d,\n\
          \  \"recovered_redone\": %d,\n\
          \  \"torn_quarantined\": %d,\n\
          \  \"replay_total_s\": %.6f,\n\
          \  \"replay_mean_ms\": %.3f,\n\
          \  \"journal_records_per_run\": %d,\n\
          \  \"journal_store_writes_per_run\": %d,\n\
          \  \"journal_checkpoints_per_run\": %d,\n\
          \  \"data_writes_per_run\": %d,\n\
          \  \"journal_writes_per_data_write\": %.4f,\n\
          \  \"wall_s\": %.3f,\n\
          \  \"failures\": %d\n\
           }\n"
          v.Harness.Crash.seeds v.Harness.Crash.points v.Harness.Crash.crashes
          (String.concat ", "
             (List.map
                (fun (s, n) -> Printf.sprintf "\"%s\": %d" (Inject.site_to_string s) n)
                v.Harness.Crash.site_points))
          v.Harness.Crash.ledger_committed_total v.Harness.Crash.committed_total
          v.Harness.Crash.redone_total v.Harness.Crash.torn_total
          v.Harness.Crash.replay_s_total
          (if v.Harness.Crash.points = 0 then 0.0
           else 1000.0 *. v.Harness.Crash.replay_s_total /. float_of_int (2 * v.Harness.Crash.points))
          v.Harness.Crash.records_per_run v.Harness.Crash.store_writes_per_run
          v.Harness.Crash.checkpoints_per_run v.Harness.Crash.data_writes_per_run
          overhead wall_s
          (List.length v.Harness.Crash.failures)
      in
      let oc = open_out path in
      output_string oc json;
      close_out oc;
      Printf.printf "  wrote %s\n" path);
  match v.Harness.Crash.failures with
  | [] ->
      Printf.printf
        "all invariants held: no committed-data loss, no torn-state acceptance, deterministic replay\n";
      0
  | fails ->
      List.iter (fun (seed, what) -> Printf.printf "FAILED seed %d: %s\n" seed what) fails;
      1

let run_soak seeds base verbose bench_out =
  let progress (r : Harness.Soak.seed_report) =
    if verbose || r.Harness.Soak.failures <> [] then
      Format.printf "%a@." Harness.Soak.pp_seed_report r
  in
  let t0 = Sys.time () in
  let v =
    Harness.Soak.run_seeds ~progress
      ~seeds:(Harness.Chaos.seeds_from ~base ~count:seeds)
      ()
  in
  let wall_s = Sys.time () -. t0 in
  Printf.printf "%s\n" (Harness.Soak.summary_line v);
  Printf.printf
    "  useful work: %d units supervised vs %d unsupervised, %d checkpoints sealed\n"
    v.Harness.Soak.total_units_sup v.Harness.Soak.total_units_unsup
    v.Harness.Soak.total_checkpoints;
  (match bench_out with
  | None -> ()
  | Some path ->
      let json =
        Printf.sprintf
          "{\n\
          \  \"benchmark\": \"availability\",\n\
          \  \"seeds\": %d,\n\
          \  \"rounds_per_run\": %d,\n\
          \  \"availability_supervised\": %.4f,\n\
          \  \"availability_unsupervised\": %.4f,\n\
          \  \"mttr_cycles\": %.1f,\n\
          \  \"restarts\": %d,\n\
          \  \"circuit_breaks\": %d,\n\
          \  \"checkpoints\": %d,\n\
          \  \"units_supervised\": %d,\n\
          \  \"units_unsupervised\": %d,\n\
          \  \"wall_s\": %.3f,\n\
          \  \"failures\": %d\n\
           }\n"
          v.Harness.Soak.seeds_run Harness.Soak.rounds
          v.Harness.Soak.availability_sup v.Harness.Soak.availability_unsup
          v.Harness.Soak.mttr_cycles v.Harness.Soak.total_restarts
          v.Harness.Soak.total_circuit_breaks v.Harness.Soak.total_checkpoints
          v.Harness.Soak.total_units_sup v.Harness.Soak.total_units_unsup
          wall_s
          (List.length v.Harness.Soak.failures)
      in
      let oc = open_out path in
      output_string oc json;
      close_out oc;
      Printf.printf "  wrote %s\n" path);
  match v.Harness.Soak.failures with
  | [] when v.Harness.Soak.total_units_sup > v.Harness.Soak.total_units_unsup ->
      Printf.printf
        "all invariants held: privacy across restarts, no stale-checkpoint acceptance, deterministic audit\n";
      0
  | [] ->
      Printf.printf
        "FAILED: supervision did not beat its absence (%d units vs %d)\n"
        v.Harness.Soak.total_units_sup v.Harness.Soak.total_units_unsup;
      1
  | fails ->
      List.iter (fun (seed, what) -> Printf.printf "FAILED seed %d: %s\n" seed what) fails;
      1

(* --- flight recorder --- *)

(* A workload name is either "fileio" or a SPEC-style compute kernel. *)
let traced_workload name =
  if name = "fileio" then
    Some
      (fun ~cloaked ~scale:_ ~trace ->
        let cfg = Workloads.Fileio.default in
        Harness.run_program ~cloaked ~trace (Workloads.Fileio.run cfg ~use_shim:true))
  else
    match Workloads.Spec.find name with
    | exception Not_found -> None
    | kernel ->
        Some
          (fun ~cloaked ~scale ~trace ->
            Harness.run_program ~cloaked ~trace (fun env ->
                let u = Uapi.of_env env in
                ignore (kernel.Workloads.Spec.run u ~scale)))

let workload_names () =
  "fileio" :: List.map (fun k -> k.Workloads.Spec.name) Workloads.Spec.kernels

let run_trace name cloaked scale json_out =
  match traced_workload name with
  | None ->
      Printf.eprintf "unknown workload %s (try: %s)\n" name
        (String.concat ", " (workload_names ()));
      1
  | Some run ->
      let trace = Trace.ring () in
      let result = run ~cloaked ~scale ~trace in
      Printf.printf "workload : %s (scale %d, %s)\n" name scale
        (if cloaked then "cloaked" else "native");
      Printf.printf "cycles   : %s\n" (Harness.Table.cycles result.Harness.cycles);
      Printf.printf "events   : %d recorded, %d dropped (ring capacity %d)\n"
        (Trace.count trace) (Trace.dropped trace) (Trace.capacity trace);
      Format.printf "%a@." Trace.pp_decomposition trace;
      (match json_out with
      | None -> ()
      | Some path ->
          let oc = open_out path in
          output_string oc (Trace.to_chrome_json trace);
          close_out oc;
          Printf.printf "wrote %s (load in chrome://tracing or Perfetto)\n" path);
      if Trace.Check.truncated trace then begin
        Printf.printf
          "invariant pass skipped: ring truncated (%d events dropped) — raise the \
           capacity to check this run\n"
          (Trace.dropped trace);
        if Harness.all_exited_zero result then 0 else 1
      end
      else begin
        match Trace.Check.verdict trace with
        | [] ->
            Printf.printf
              "trace invariants held: MAC-before-decrypt, scrub-before-free, \
               bump-before-restore, owner-only plaintext\n";
            if Harness.all_exited_zero result then 0 else 1
        | fails ->
            List.iter (fun f -> Printf.printf "TRACE INVARIANT FAILED: %s\n" f) fails;
            1
      end

let run_trace_overhead out =
  let workloads =
    [ ("fileio", true, 1);
      ((List.hd Workloads.Spec.kernels).Workloads.Spec.name, true, 1) ]
  in
  let timed f =
    let t0 = Sys.time () in
    let r = f () in
    (r, Sys.time () -. t0)
  in
  let rows, ok =
    List.fold_left
      (fun (rows, ok) (name, cloaked, scale) ->
        let run = Option.get (traced_workload name) in
        let baseline, base_s = timed (fun () -> run ~cloaked ~scale ~trace:Trace.null) in
        let null_r, null_s = timed (fun () -> run ~cloaked ~scale ~trace:Trace.null) in
        let ring = Trace.ring () in
        let ring_r, ring_s = timed (fun () -> run ~cloaked ~scale ~trace:ring) in
        let null_d = null_r.Harness.cycles - baseline.Harness.cycles in
        let ring_d = ring_r.Harness.cycles - baseline.Harness.cycles in
        Printf.printf
          "%-10s baseline %s | null sink %+d cy | ring sink %+d cy (%d events)\n"
          name
          (Harness.Table.cycles baseline.Harness.cycles)
          null_d ring_d (Trace.count ring);
        let row =
          Printf.sprintf
            "    {\n\
            \      \"workload\": \"%s\",\n\
            \      \"baseline_cycles\": %d,\n\
            \      \"null_sink_cycles\": %d,\n\
            \      \"ring_sink_cycles\": %d,\n\
            \      \"null_sink_delta_cycles\": %d,\n\
            \      \"ring_sink_delta_cycles\": %d,\n\
            \      \"ring_events\": %d,\n\
            \      \"baseline_wall_s\": %.6f,\n\
            \      \"null_sink_wall_s\": %.6f,\n\
            \      \"ring_sink_wall_s\": %.6f\n\
            \    }"
            name baseline.Harness.cycles null_r.Harness.cycles ring_r.Harness.cycles
            null_d ring_d (Trace.count ring) base_s null_s ring_s
        in
        (row :: rows, ok && null_d = 0 && ring_d = 0))
      ([], true) workloads
  in
  let json =
    Printf.sprintf
      "{\n\
      \  \"benchmark\": \"trace_overhead\",\n\
      \  \"workloads\": [\n\
       %s\n\
      \  ],\n\
      \  \"zero_model_cycle_overhead\": %b\n\
       }\n"
      (String.concat ",\n" (List.rev rows))
      ok
  in
  (match out with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      output_string oc json;
      close_out oc;
      Printf.printf "wrote %s\n" path);
  if ok then begin
    Printf.printf "trace sinks added zero model cycles on every workload\n";
    0
  end
  else begin
    Printf.printf "FAILED: a trace sink perturbed the cost model\n";
    1
  end

let run_list () =
  Printf.printf "compute kernels:\n";
  List.iter (fun k -> Printf.printf "  %s\n" k.Workloads.Spec.name) Workloads.Spec.kernels;
  Printf.printf "\nattacks:\n";
  List.iter (fun n -> Printf.printf "  %s\n" n) Attacks.names;
  Printf.printf "\nbenchmark tables: dune exec bench/main.exe -- E1 E2 E3+E4 E5 E6 E7 E8 E8b\n";
  0

(* --- cmdliner plumbing --- *)

let cloaked_flag = Arg.(value & flag & info [ "cloaked" ] ~doc:"Run the program cloaked.")

let kernel_cmd =
  let kernel_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"KERNEL" ~doc:"Kernel name.")
  in
  let scale_arg =
    Arg.(value & opt int 1 & info [ "scale" ] ~docv:"N" ~doc:"Problem size multiplier.")
  in
  Cmd.v
    (Cmd.info "kernel" ~doc:"Run one SPEC-style compute kernel and report model cycles.")
    Term.(const run_spec_kernel $ kernel_arg $ cloaked_flag $ scale_arg)

let attack_cmd =
  let all_arg = Arg.(value & flag & info [ "all" ] ~doc:"Run the whole catalog.") in
  let attack_arg =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"ATTACK" ~doc:"Attack name.")
  in
  Cmd.v
    (Cmd.info "attack" ~doc:"Run malicious-OS attacks and report leak/detection outcomes.")
    Term.(const run_attacks $ all_arg $ attack_arg)

let counters_cmd =
  Cmd.v
    (Cmd.info "counters" ~doc:"Run the fileio workload and dump all VMM event counters.")
    Term.(const run_counters $ cloaked_flag)

let chaos_cmd =
  let seeds_arg =
    Arg.(value & opt int 10 & info [ "seeds" ] ~docv:"N" ~doc:"Number of seeded fault plans.")
  in
  let base_arg =
    Arg.(value & opt int 1 & info [ "base" ] ~docv:"SEED" ~doc:"First seed of the sweep.")
  in
  let verbose_arg =
    Arg.(value & flag & info [ "verbose" ] ~doc:"Print each run's fault plan and audit log.")
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Run the workload under seeded random fault plans and check the hostile-world \
          invariants (containment, privacy, deterministic replay).")
    Term.(const run_chaos $ seeds_arg $ base_arg $ verbose_arg)

let recover_cmd =
  let seed_arg =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Workload seed.")
  in
  let site_arg =
    Arg.(
      value
      & opt string "blk-write"
      & info [ "site" ] ~docv:"SITE"
          ~doc:"Crash site (jrnl-append, jrnl-ckpt, blk-write, blk-free).")
  in
  let at_arg =
    Arg.(value & opt int 1 & info [ "at" ] ~docv:"N" ~doc:"Site occurrence the power cut fires on.")
  in
  Cmd.v
    (Cmd.info "recover"
       ~doc:
         "Kill the VMM at one crash point, replay the metadata journal on a fresh \
          same-seed VMM, and print the classification and audit trail.")
    Term.(const run_recover $ seed_arg $ site_arg $ at_arg)

let crash_matrix_cmd =
  let seeds_arg =
    Arg.(value & opt int 20 & info [ "seeds" ] ~docv:"N" ~doc:"Number of workload seeds.")
  in
  let base_arg =
    Arg.(value & opt int 1 & info [ "base" ] ~docv:"SEED" ~doc:"First seed of the sweep.")
  in
  let per_site_arg =
    Arg.(
      value & opt int 6
      & info [ "per-site" ] ~docv:"N" ~doc:"Crash occurrences sampled per site per seed.")
  in
  let verbose_arg =
    Arg.(value & flag & info [ "verbose" ] ~doc:"Print every crash point's outcome.")
  in
  let bench_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "bench-out" ] ~docv:"FILE" ~doc:"Write a JSON benchmark summary to $(docv).")
  in
  Cmd.v
    (Cmd.info "crash-matrix"
       ~doc:
         "Power-cut the VMM at every journal/device write site across N seeds and \
          check the recovery invariants (no committed-data loss, no torn-state \
          acceptance, deterministic replay).")
    Term.(
      const run_crash_matrix $ seeds_arg $ base_arg $ per_site_arg $ verbose_arg
      $ bench_out_arg)

let soak_cmd =
  let seeds_arg =
    Arg.(value & opt int 20 & info [ "seeds" ] ~docv:"N" ~doc:"Number of workload seeds.")
  in
  let base_arg =
    Arg.(value & opt int 1 & info [ "base" ] ~docv:"SEED" ~doc:"First seed of the sweep.")
  in
  let verbose_arg =
    Arg.(value & flag & info [ "verbose" ] ~doc:"Print every seed's report, not just failures.")
  in
  let bench_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "bench-out" ] ~docv:"FILE" ~doc:"Write a JSON benchmark summary to $(docv).")
  in
  Cmd.v
    (Cmd.info "soak"
       ~doc:
         "Run the availability soak: a restart-aware cloaked service under sustained \
          lethal fault plans, supervised (sealed checkpoints + restart-with-backoff) \
          vs unsupervised, checking privacy across restarts, stale-checkpoint \
          rejection and audit determinism.")
    Term.(const run_soak $ seeds_arg $ base_arg $ verbose_arg $ bench_out_arg)

let trace_cmd =
  let workload_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"WORKLOAD" ~doc:"Workload: $(b,fileio) or a compute kernel name.")
  in
  let scale_arg =
    Arg.(value & opt int 1 & info [ "scale" ] ~docv:"N" ~doc:"Problem size multiplier.")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Export the event stream as Chrome trace_event JSON to $(docv).")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run a workload under the flight recorder: print the per-span-class \
          latency decomposition (count, total cycles, p50/p95/p99), check the \
          trace-ordering invariants, and optionally export a Chrome trace.")
    Term.(const run_trace $ workload_arg $ cloaked_flag $ scale_arg $ json_arg)

let trace_overhead_cmd =
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE" ~doc:"Write a JSON benchmark summary to $(docv).")
  in
  Cmd.v
    (Cmd.info "trace-overhead"
       ~doc:
         "Prove the flight recorder is free in the cost model: run workloads with \
          the null sink and a live ring and assert the model cycle counts are \
          identical to the untraced baseline.")
    Term.(const run_trace_overhead $ out_arg)

let list_cmd =
  Cmd.v (Cmd.info "list" ~doc:"List available kernels and attacks.") Term.(const run_list $ const ())

let () =
  let info =
    Cmd.info "overshadow-cli" ~version:"1.0"
      ~doc:"Overshadow (ASPLOS 2008) reproduction: cloaked execution on a simulated VMM."
  in
  exit
    (Cmd.eval'
       (Cmd.group info
          [ kernel_cmd; attack_cmd; counters_cmd; chaos_cmd; recover_cmd; crash_matrix_cmd;
            soak_cmd; trace_cmd; trace_overhead_cmd; list_cmd ]))
