(* Command-line front end for the Overshadow reproduction.

     overshadow-cli kernel sort --cloaked     run one compute kernel
     overshadow-cli attack tamper-memory      run one malicious-OS attack
     overshadow-cli attack --all              run the whole catalog
     overshadow-cli counters --cloaked        run a workload, dump counters
     overshadow-cli chaos --seeds 25          seeded fault-injection sweep
     overshadow-cli list                      what's available

   The benchmark tables (E1-E8) live in `dune exec bench/main.exe`. *)

open Cmdliner

let run_spec_kernel name cloaked scale =
  match Workloads.Spec.find name with
  | exception Not_found ->
      Printf.eprintf "unknown kernel %s (try: %s)\n" name
        (String.concat ", " (List.map (fun k -> k.Workloads.Spec.name) Workloads.Spec.kernels));
      1
  | kernel ->
      let checksum = ref 0 in
      let result =
        Harness.run_program ~cloaked (fun env ->
            let u = Uapi.of_env env in
            checksum := kernel.Workloads.Spec.run u ~scale)
      in
      Printf.printf "kernel   : %s (scale %d, %s)\n" name scale
        (if cloaked then "cloaked" else "native");
      Printf.printf "checksum : %d\n" !checksum;
      Printf.printf "cycles   : %s\n" (Harness.Table.cycles result.Harness.cycles);
      if not (Harness.all_exited_zero result) then begin
        Printf.printf "process failed!\n";
        1
      end
      else 0

let run_attacks all name =
  let outcomes =
    if all then Attacks.run_all ()
    else
      match name with
      | Some n when List.mem n Attacks.names -> [ Attacks.run n ]
      | Some n ->
          Printf.eprintf "unknown attack %s\n" n;
          exit 1
      | None ->
          Printf.eprintf "give an attack name or --all (see `list`)\n";
          exit 1
  in
  List.iter (fun o -> Format.printf "%a@." Attacks.pp_outcome o) outcomes;
  let bad =
    List.exists
      (fun (o : Attacks.outcome) -> o.leaked || ((not o.detected) && o.violation <> None))
      outcomes
  in
  if bad then 1 else 0

let run_counters cloaked =
  let cfg = Workloads.Fileio.default in
  let result = Harness.run_program ~cloaked (Workloads.Fileio.run cfg ~use_shim:true) in
  Printf.printf "fileio workload (%s), %d operations, %s:\n\n"
    (if cloaked then "cloaked" else "native")
    cfg.Workloads.Fileio.operations
    (Harness.Table.cycles result.Harness.cycles);
  Format.printf "%a@." Machine.Counters.pp result.Harness.counters;
  if Harness.all_exited_zero result then 0 else 1

let run_chaos seeds base verbose =
  let reports = ref [] in
  let progress r =
    reports := r :: !reports;
    if verbose then Format.printf "%a@." Harness.Chaos.pp_report r
    else
      Printf.printf "seed %-10d %3d injections, %2d contained, %s\n"
        r.Harness.Chaos.seed r.Harness.Chaos.injections r.Harness.Chaos.contained
        (match (r.Harness.Chaos.crash, r.Harness.Chaos.leaks) with
        | Some m, _ -> "CRASH " ^ m
        | None, [] -> "clean"
        | None, l -> "LEAK " ^ String.concat ", " l)
  in
  let v =
    Harness.Chaos.run_seeds ~progress
      ~seeds:(Harness.Chaos.seeds_from ~base ~count:seeds)
      ()
  in
  Printf.printf
    "\n%d seeds (each run twice): %d injections, %d contained faults, %d security kills\n"
    v.Harness.Chaos.runs v.Harness.Chaos.total_injections v.Harness.Chaos.total_contained
    v.Harness.Chaos.security_kills;
  match v.Harness.Chaos.failures with
  | [] ->
      Printf.printf "all invariants held: no escapes, no leaks, deterministic replay\n";
      0
  | fails ->
      List.iter (fun (seed, what) -> Printf.printf "FAILED seed %d: %s\n" seed what) fails;
      1

let run_list () =
  Printf.printf "compute kernels:\n";
  List.iter (fun k -> Printf.printf "  %s\n" k.Workloads.Spec.name) Workloads.Spec.kernels;
  Printf.printf "\nattacks:\n";
  List.iter (fun n -> Printf.printf "  %s\n" n) Attacks.names;
  Printf.printf "\nbenchmark tables: dune exec bench/main.exe -- E1 E2 E3+E4 E5 E6 E7 E8 E8b\n";
  0

(* --- cmdliner plumbing --- *)

let cloaked_flag = Arg.(value & flag & info [ "cloaked" ] ~doc:"Run the program cloaked.")

let kernel_cmd =
  let kernel_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"KERNEL" ~doc:"Kernel name.")
  in
  let scale_arg =
    Arg.(value & opt int 1 & info [ "scale" ] ~docv:"N" ~doc:"Problem size multiplier.")
  in
  Cmd.v
    (Cmd.info "kernel" ~doc:"Run one SPEC-style compute kernel and report model cycles.")
    Term.(const run_spec_kernel $ kernel_arg $ cloaked_flag $ scale_arg)

let attack_cmd =
  let all_arg = Arg.(value & flag & info [ "all" ] ~doc:"Run the whole catalog.") in
  let attack_arg =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"ATTACK" ~doc:"Attack name.")
  in
  Cmd.v
    (Cmd.info "attack" ~doc:"Run malicious-OS attacks and report leak/detection outcomes.")
    Term.(const run_attacks $ all_arg $ attack_arg)

let counters_cmd =
  Cmd.v
    (Cmd.info "counters" ~doc:"Run the fileio workload and dump all VMM event counters.")
    Term.(const run_counters $ cloaked_flag)

let chaos_cmd =
  let seeds_arg =
    Arg.(value & opt int 10 & info [ "seeds" ] ~docv:"N" ~doc:"Number of seeded fault plans.")
  in
  let base_arg =
    Arg.(value & opt int 1 & info [ "base" ] ~docv:"SEED" ~doc:"First seed of the sweep.")
  in
  let verbose_arg =
    Arg.(value & flag & info [ "verbose" ] ~doc:"Print each run's fault plan and audit log.")
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Run the workload under seeded random fault plans and check the hostile-world \
          invariants (containment, privacy, deterministic replay).")
    Term.(const run_chaos $ seeds_arg $ base_arg $ verbose_arg)

let list_cmd =
  Cmd.v (Cmd.info "list" ~doc:"List available kernels and attacks.") Term.(const run_list $ const ())

let () =
  let info =
    Cmd.info "overshadow-cli" ~version:"1.0"
      ~doc:"Overshadow (ASPLOS 2008) reproduction: cloaked execution on a simulated VMM."
  in
  exit (Cmd.eval' (Cmd.group info [ kernel_cmd; attack_cmd; counters_cmd; chaos_cmd; list_cmd ]))
