# Tier-1 gate plus a short hostile-world smoke. `make ci` is what a
# pre-merge check should run; the full 25+-seed sweep lives in the test
# suite itself (test/test_chaos.ml).

DUNE ?= dune

.PHONY: all build test chaos-smoke ci clean

all: build

build:
	$(DUNE) build

test: build
	$(DUNE) runtest

# 10 seeded fault plans, each run twice (determinism check): fails on any
# escaped exception, plaintext leak, or nondeterministic audit log.
chaos-smoke: build
	$(DUNE) exec bin/overshadow_cli.exe -- chaos --seeds 10

ci: test chaos-smoke

clean:
	$(DUNE) clean
