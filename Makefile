# Tier-1 gate plus a short hostile-world smoke. `make ci` is what a
# pre-merge check should run; the full 25+-seed sweep lives in the test
# suite itself (test/test_chaos.ml).

DUNE ?= dune

.PHONY: all build test chaos-smoke recovery soak migrate fleet telemetry adversary trace profile regress ci clean

all: build

build:
	$(DUNE) build

test: build
	$(DUNE) runtest

# 10 seeded fault plans, each run twice (determinism check): fails on any
# escaped exception, plaintext leak, or nondeterministic audit log.
chaos-smoke: build
	$(DUNE) exec bin/overshadow_cli.exe -- chaos --seeds 10

# Power-cut the VMM at every journal/device write site across 20 seeds
# and check the recovery invariants; emits the crash-point coverage,
# replay-time and journal-overhead numbers as BENCH_recovery.json.
recovery: build
	$(DUNE) exec bin/overshadow_cli.exe -- crash-matrix --seeds 20 --bench-out BENCH_recovery.json

# Availability soak: a restart-aware cloaked service under sustained
# lethal fault plans, supervised (sealed checkpoints + restart-with-
# backoff) vs unsupervised; checks privacy across restarts, stale-
# checkpoint rejection and audit determinism, and emits the availability
# and MTTR numbers as BENCH_availability.json.
soak: build
	$(DUNE) exec bin/overshadow_cli.exe -- soak --seeds 20 --bench-out BENCH_availability.json

# Live migration over a hostile, lossy channel: per seed a clean, a
# hostile and a blackhole (all-loss) migration of a cloaked process
# between two VMMs, plus a crash matrix on the channel sites; checks
# single-incarnation, wire privacy, replay/tamper rejection and bounded
# downtime, and emits the downtime percentiles as BENCH_migration.json.
migrate: build
	$(DUNE) exec bin/overshadow_cli.exe -- migrate --seeds 20 --bench-out BENCH_migration.json

# Fleet supervisor under hostile open-loop load: a multi-VMM fleet of
# cloaked services behind a load balancer, with heartbeat-based failure
# detection, migration-based failover and typed load shedding; per seed a
# fault-free SLO run, the hostile plan twice (determinism) and a
# blackhole run; checks the latency budget, exactly-once failover and the
# supervised-beats-unsupervised goodput gap, and emits availability, shed
# and tail-latency numbers as BENCH_fleet.json.
fleet: build
	$(DUNE) exec bin/overshadow_cli.exe -- fleet --seeds 20 --bench-out BENCH_fleet.json

# Fleet telemetry proof: the same hostile fleet scenario with the
# per-host registries disabled and enabled must charge identical model
# cycles (trace ids ride the migration wire unconditionally), and the
# enabled run must stitch every committed failover into one cross-host
# causal trace and page the burn-rate monitor on host death while a
# fault-free replay stays silent; emits BENCH_telemetry.json.
telemetry: build
	$(DUNE) exec bin/overshadow_cli.exe -- telemetry --bench-out BENCH_telemetry.json

# Adversarial-OS sweep: every workload under the malicious-kernel
# personality — lying syscall returns (Iago), address-space remap/replay,
# identity confusion and scheduling attacks — one class per cell, each
# cell run twice against a fault-free baseline; asserts zero plaintext
# leaks, zero silent corruptions (fault-free digest or a typed refusal)
# and a deterministic audit, and emits the attack/refusal tallies as
# BENCH_adversary.json.
adversary: build
	$(DUNE) exec bin/overshadow_cli.exe -- adversary --seeds 20 --bench-out BENCH_adversary.json

# Flight-recorder overhead proof: run cloaked workloads under the null
# sink and under a live ring and assert both add zero model cycles over
# an untraced baseline; emits BENCH_trace_overhead.json. Also prints the
# per-span-class latency decomposition for one workload as a smoke test.
trace: build
	$(DUNE) exec bin/overshadow_cli.exe -- trace-overhead --out BENCH_trace_overhead.json
	$(DUNE) exec bin/overshadow_cli.exe -- trace fileio --cloaked

# Profiler smoke: exact cycle attribution for the cloaked fileio run,
# with the collapsed-stack (flamegraph.pl input) export.
profile: build
	$(DUNE) exec bin/overshadow_cli.exe -- profile fileio --cloaked --out BENCH_fileio.collapsed

# Perf-regression sentinel: replay the E1/E2 suite plus the key VMM
# counters against the committed bench/baselines.json; fails on any
# cycle metric drifting beyond tolerance or any counter changing at all.
# After an intentional perf change: make regress-update, commit the file.
regress: build
	$(DUNE) exec bin/overshadow_cli.exe -- regress --bench-out BENCH_regress.json

regress-update: build
	$(DUNE) exec bin/overshadow_cli.exe -- regress --update-baselines

ci: test chaos-smoke recovery soak migrate fleet telemetry adversary trace regress profile

clean:
	$(DUNE) clean
